// Channel: the metered transport every parameter exchange of the round
// loop goes through. The server broadcasts deployed snapshots down it
// and collects client updates up it; each message is encoded with the
// configured codec and byte/message counts are accumulated per client,
// per round, and cumulatively.
//
// Latency model: each client k owns a link (ClientLink) — uplink and
// downlink rates plus a fixed per-message cost — defaulting to the
// shared CommConfig rates when no per-client links are set. A client's
// transfers within a round are serial on its own link; different
// clients transfer in parallel. Standalone (no simulation engine), a
// round costs max over clients of that client's serial transfer time;
// under src/sim the engine schedules per-client transfer completions
// as events on the virtual clock and closes the round with the
// engine-computed duration via end_round(duration).
//
// Error feedback (CommConfig::error_feedback): with a lossy uplink
// codec, each client keeps the residual update - decode(encode(update))
// and adds it to the next round's update before encoding, so small but
// consistent components are not silently dropped forever.
//
// Delta downlink (CommConfig::downlink = kTopKDelta): the server
// tracks, per client, the snapshot that client last decoded and
// encodes each downlink delta against it — both sides hold the
// reference, so clients sampled in different rounds still reconstruct
// consistently (first contact encodes against zeros).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/codec.hpp"

namespace fleda {

struct CommConfig {
  CodecKind uplink = CodecKind::kFp32;    // client -> server updates
  CodecKind downlink = CodecKind::kFp32;  // server -> client deployments
  double topk_fraction = 0.05;            // TopKDeltaCodec keep fraction
  // Shared default link parameters (100 Mbit/s up, 500 Mbit/s down,
  // 50 ms fixed cost per message); per-client overrides come from
  // Channel::set_links / ClientProfile.
  double uplink_bytes_per_sec = 12.5e6;
  double downlink_bytes_per_sec = 62.5e6;
  double per_message_latency_s = 0.05;
  // Client-side error-feedback accumulators for lossy uplink codecs.
  bool error_feedback = false;
};

// Per-client link parameters; non-positive rate / negative latency
// inherit the CommConfig shared defaults.
struct ClientLink {
  double uplink_bytes_per_sec = 0.0;
  double downlink_bytes_per_sec = 0.0;
  double per_message_latency_s = -1.0;

  // This link with every "inherit" sentinel replaced by the CommConfig
  // shared default — the single place the fallback rule lives.
  ClientLink with_defaults(const CommConfig& config) const;
};

// One client's traffic within the current round.
struct ClientRoundTraffic {
  std::uint64_t downlink_bytes = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_messages = 0;
  std::uint64_t uplink_messages = 0;
};

struct RoundCommStats {
  int round = 0;
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  std::uint64_t uplink_messages = 0;
  std::uint64_t downlink_messages = 0;
  double simulated_latency_s = 0.0;
};

struct ChannelStats {
  std::uint64_t uplink_bytes = 0;
  std::uint64_t downlink_bytes = 0;
  // What the same exchanges would have cost uncompressed (fp32).
  std::uint64_t raw_uplink_bytes = 0;
  std::uint64_t raw_downlink_bytes = 0;
  std::uint64_t uplink_messages = 0;
  std::uint64_t downlink_messages = 0;
  double simulated_latency_s = 0.0;
  std::vector<RoundCommStats> rounds;

  double uplink_compression() const;    // raw / actual; 1.0 when idle
  double downlink_compression() const;
  double uplink_mb() const { return static_cast<double>(uplink_bytes) / 1e6; }
  double downlink_mb() const {
    return static_cast<double>(downlink_bytes) / 1e6;
  }
  double total_mb() const { return uplink_mb() + downlink_mb(); }
};

class Channel {
 public:
  explicit Channel(const CommConfig& config);

  // Installs per-client links (index = client). An empty vector (the
  // default) means every client uses the CommConfig shared rates.
  void set_links(std::vector<ClientLink> links);
  // Client k's link with CommConfig defaults filled in.
  ClientLink link(std::size_t k) const;

  // Server -> clients. deployed[k] is the snapshot addressed to client
  // k; repeated pointers (a shared global model) are encoded once but
  // billed per recipient, like a broadcast. Returns what each client
  // decodes — under a lossy codec this is what the client actually
  // trains from. Each distinct (snapshot, per-client downlink
  // reference) pair is decoded once and shared across recipients
  // (recipients must not mutate it).
  std::vector<std::shared_ptr<const ModelParameters>> broadcast(
      const std::vector<const ModelParameters*>& deployed);

  // Cohort-addressed form: deployed[i] goes to client recipients[i]
  // (indices must be distinct within one call). Only the named
  // recipients are billed — under partial participation a round's
  // downlink cost is O(|cohort|), not O(K).
  std::vector<std::shared_ptr<const ModelParameters>> broadcast(
      const std::vector<const ModelParameters*>& deployed,
      const std::vector<std::size_t>& recipients);

  // Clients -> server. references[k] is the snapshot client k started
  // from this round (already held by both sides; delta codecs encode
  // against it). Encoding happens client-side and decoding server-side,
  // both in parallel on ThreadPool::global(). Returns the server-side
  // view of each update.
  std::vector<ModelParameters> collect(
      const std::vector<ModelParameters>& updates,
      const std::vector<const ModelParameters*>& references);

  // Cohort-addressed form: updates[i] comes from client senders[i]
  // (indices must be distinct within one call).
  std::vector<ModelParameters> collect(
      const std::vector<ModelParameters>& updates,
      const std::vector<const ModelParameters*>& references,
      const std::vector<std::size_t>& senders);

  // Move-consuming form: identical math and billing, but each client's
  // raw update is released right after its roundtrip instead of living
  // until the whole cohort returns — the caller hands the vector over
  // and the round peaks at one cohort of decoded updates, not two
  // (raw + decoded).
  std::vector<ModelParameters> collect(
      std::vector<ModelParameters>&& updates,
      const std::vector<const ModelParameters*>& references,
      const std::vector<std::size_t>& senders);

  // Streaming collect: the fully O(1)-per-client form. Produces, wires,
  // and consumes one update at a time — the cohort is never
  // materialized on either side.
  //
  // `lane_offsets` (fold_lane_offsets(n, lanes)) partitions cohort
  // positions [0, n) into contiguous lanes; lanes run in parallel on
  // the pool, each lane walks its block serially in cohort order. For
  // each position i: produce(i) yields client senders[i]'s update
  // (callers typically train the client inside produce, so lanes are
  // also the round's training parallelism), the update goes through the
  // uplink codec roundtrip, consume(lane, i, decoded) folds the
  // server-side view in, and both copies are freed before i + 1 starts.
  //
  // produce/consume run on lane threads for distinct positions
  // concurrently; billing is reduced serially afterwards, in cohort
  // order, exactly like collect(). A throw from produce/consume/codec
  // stops that lane; the earliest-lane error is rethrown on the caller
  // thread after all lanes settle.
  void collect_streaming(
      const std::vector<std::size_t>& senders,
      const std::vector<const ModelParameters*>& references,
      const std::vector<std::size_t>& lane_offsets,
      const std::function<ModelParameters(std::size_t)>& produce,
      const std::function<void(std::size_t, std::size_t, ModelParameters&&)>&
          consume);

  // Per-message primitives for event-driven schedules (AsyncFedAvg):
  // one deployment to / one update from a single client, billed to
  // that client's round traffic. bytes_out (optional) receives the
  // encoded wire size so the caller can schedule the transfer
  // completion on the simulation clock.
  std::shared_ptr<const ModelParameters> send_down(
      std::size_t client, const ModelParameters& snapshot,
      std::uint64_t* bytes_out = nullptr);
  ModelParameters send_up(std::size_t client, const ModelParameters& update,
                          const ModelParameters* reference,
                          std::uint64_t* bytes_out = nullptr);

  // Closes the current round's accounting entry. The no-argument form
  // derives the round's simulated latency from the per-client links
  // (max over clients of serial transfer time — no compute); the
  // other form records an engine-computed duration (transfers +
  // compute + availability on the virtual clock).
  void end_round();
  void end_round(double simulated_duration_s);

  // Per-client traffic of the round currently being accumulated.
  const std::vector<ClientRoundTraffic>& round_traffic() const {
    return traffic_;
  }

  const CommConfig& config() const { return config_; }
  const ChannelStats& stats() const { return stats_; }

 private:
  void ensure_clients(std::size_t n);
  void bill_downlink(std::size_t client, std::uint64_t bytes,
                     std::uint64_t raw_bytes);
  void bill_uplink(std::size_t client, std::uint64_t bytes,
                   std::uint64_t raw_bytes);
  // Client-side encode (with error feedback) + server-side decode of
  // one update. Not thread-safe across the same client index; safe for
  // distinct clients.
  ModelParameters uplink_roundtrip(std::size_t client,
                                   const ModelParameters& update,
                                   const ModelParameters* reference,
                                   std::uint64_t* bytes,
                                   std::uint64_t* raw_bytes);

  CommConfig config_;
  std::unique_ptr<ParameterCodec> uplink_codec_;
  std::unique_ptr<ParameterCodec> downlink_codec_;
  // Downlink deltas (TopKDelta) encode against what each client last
  // decoded from the server, not against nullptr.
  bool downlink_delta_ = false;
  std::vector<ClientLink> links_;
  ChannelStats stats_;
  RoundCommStats current_round_;
  std::vector<ClientRoundTraffic> traffic_;
  // Per-client error-feedback residuals (empty snapshot = no residual
  // yet); only populated when config_.error_feedback and the uplink
  // codec is lossy.
  std::vector<ModelParameters> residuals_;
  // Per-client server-side reference tracking for delta downlinks:
  // the snapshot client k last decoded (shared with the recipient —
  // both sides hold it, so the next delta encodes against it). Only
  // populated when downlink_delta_.
  std::vector<std::shared_ptr<const ModelParameters>> downlink_refs_;
};

}  // namespace fleda
