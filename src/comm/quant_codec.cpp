// Int8QuantCodec: per-tensor affine quantization. Each entry stores the
// tensor minimum and the quantization step as f32, then one u8 code per
// element: x ~ min + step * q with q = round((x - min) / step) in
// [0, 255]. Constant tensors degenerate to step == 0 and decode
// exactly. ~3.97x smaller than fp32 for the model sizes in play.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/codec.hpp"
#include "comm/wire.hpp"

namespace fleda {

ByteBuffer Int8QuantCodec::encode(const ModelParameters& params,
                                  const ModelParameters* /*reference*/) const {
  ByteBuffer out;
  wire::Writer w{out};
  wire::write_preamble(w, static_cast<std::uint8_t>(kind()),
                       static_cast<std::uint32_t>(params.entries().size()));
  for (const ParameterEntry& e : params.entries()) {
    wire::write_entry_meta(w, e);
    float lo = 0.0f, hi = 0.0f;
    if (e.value.numel() > 0) {
      lo = hi = e.value[0];
      for (std::int64_t i = 1; i < e.value.numel(); ++i) {
        lo = std::min(lo, e.value[i]);
        hi = std::max(hi, e.value[i]);
      }
    }
    const float step = (hi - lo) / 255.0f;
    // A single inf/nan (diverged client) or a range overflowing float
    // would otherwise decode the WHOLE tensor to nan and silently
    // poison the aggregate — refuse instead.
    if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(step)) {
      throw std::invalid_argument(
          "Int8QuantCodec: non-finite values or range overflow in '" +
          e.name + "'");
    }
    w.pod<float>(lo);
    w.pod<float>(step);
    for (std::int64_t i = 0; i < e.value.numel(); ++i) {
      float q = step > 0.0f ? std::round((e.value[i] - lo) / step) : 0.0f;
      q = std::min(255.0f, std::max(0.0f, q));
      w.pod<std::uint8_t>(static_cast<std::uint8_t>(q));
    }
  }
  return out;
}

ModelParameters Int8QuantCodec::decode(
    const ByteBuffer& blob, const ModelParameters* /*reference*/) const {
  wire::Reader r(blob);
  const std::uint32_t count =
      wire::read_preamble(r, static_cast<std::uint8_t>(kind()));
  ModelParameters params;
  params.mutable_entries().reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParameterEntry e = wire::read_entry_meta(r);
    const float lo = r.pod<float>();
    const float step = r.pod<float>();
    for (std::int64_t j = 0; j < e.value.numel(); ++j) {
      e.value[j] = lo + step * static_cast<float>(r.pod<std::uint8_t>());
    }
    params.mutable_entries().push_back(std::move(e));
  }
  return params;
}

}  // namespace fleda
