// ParameterCodec: pluggable (de)serialization + compression of
// ModelParameters for the parameter-exchange channel. This is the unit
// the decentralized setting actually ships over the network — clients
// upload encoded updates, the developer broadcasts encoded aggregates —
// so every codec pairs an `encode` to a byte buffer with a `decode`
// back to a structurally identical snapshot.
//
// Wire format "FLC1" (extends the tensor "FLT1" idiom): magic, codec
// id (u8), entry count (u32), then per entry name / buffer flag /
// shape followed by a codec-specific payload. All integers are
// little-endian; payloads are self-describing so decode works without
// out-of-band metadata.
//
// Delta codecs (TopKDeltaCodec) additionally take a `reference`
// snapshot both sides already hold — the deployed model — and encode
// only the (sparsified) difference against it. Stateless codecs ignore
// the reference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fl/parameters.hpp"

namespace fleda {

using ByteBuffer = std::vector<std::uint8_t>;

enum class CodecKind : std::uint8_t {
  kFp32 = 0,       // baseline: raw float32, lossless
  kFp16 = 1,       // IEEE 754 half precision, 2x
  kInt8Quant = 2,  // per-tensor affine quantization to u8, ~4x
  kTopKDelta = 3,  // top-k sparsified delta vs. the deployed model
};

std::string to_string(CodecKind kind);

class ParameterCodec {
 public:
  virtual ~ParameterCodec() = default;

  virtual std::string name() const = 0;
  virtual CodecKind kind() const = 0;

  // Whether decode(encode(x)) can differ from x. Drives the channel's
  // error-feedback accumulators: lossless codecs have no residual.
  bool lossy() const { return kind() != CodecKind::kFp32; }

  // Encodes `params` to a self-describing byte buffer. `reference` is
  // the snapshot the receiver is known to hold (the deployed model);
  // nullptr means "no shared state" (delta codecs fall back to a delta
  // against zeros).
  virtual ByteBuffer encode(const ModelParameters& params,
                            const ModelParameters* reference) const = 0;

  // Inverse of encode; `reference` must match the encoder's.
  // Throws std::runtime_error on malformed input.
  virtual ModelParameters decode(const ByteBuffer& blob,
                                 const ModelParameters* reference) const = 0;
};

// Factory. `topk_fraction` only affects kTopKDelta (fraction of
// entries kept, in (0, 1]).
std::unique_ptr<ParameterCodec> make_codec(CodecKind kind,
                                           double topk_fraction = 0.05);

// Bytes an uncompressed fp32 exchange of `params` would occupy on the
// wire (the Fp32Codec size) — the baseline for compression ratios.
std::uint64_t raw_wire_bytes(const ModelParameters& params);

// IEEE 754 binary16 conversions (round-to-nearest-even), exposed for
// tests and the Fp16Codec.
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

// ---------------------------------------------------------------------
// Concrete codecs.

class Fp32Codec : public ParameterCodec {
 public:
  std::string name() const override { return "fp32"; }
  CodecKind kind() const override { return CodecKind::kFp32; }
  ByteBuffer encode(const ModelParameters& params,
                    const ModelParameters* reference) const override;
  ModelParameters decode(const ByteBuffer& blob,
                         const ModelParameters* reference) const override;
};

class Fp16Codec : public ParameterCodec {
 public:
  std::string name() const override { return "fp16"; }
  CodecKind kind() const override { return CodecKind::kFp16; }
  ByteBuffer encode(const ModelParameters& params,
                    const ModelParameters* reference) const override;
  ModelParameters decode(const ByteBuffer& blob,
                         const ModelParameters* reference) const override;
};

// Per-tensor affine quantization: each entry stores f32 min + f32 step
// and one u8 per element; x ~ min + step * q.
class Int8QuantCodec : public ParameterCodec {
 public:
  std::string name() const override { return "int8"; }
  CodecKind kind() const override { return CodecKind::kInt8Quant; }
  ByteBuffer encode(const ModelParameters& params,
                    const ModelParameters* reference) const override;
  ModelParameters decode(const ByteBuffer& blob,
                         const ModelParameters* reference) const override;
};

// Keeps only the k = max(1, fraction * numel) largest-magnitude
// entries of (params - reference), stored as (index, value) pairs per
// tensor; decode scatters them onto the reference. Builds on the same
// delta view of an update as fl/privacy.cpp's clipping.
class TopKDeltaCodec : public ParameterCodec {
 public:
  explicit TopKDeltaCodec(double fraction);

  std::string name() const override;
  CodecKind kind() const override { return CodecKind::kTopKDelta; }
  double fraction() const { return fraction_; }
  ByteBuffer encode(const ModelParameters& params,
                    const ModelParameters* reference) const override;
  ModelParameters decode(const ByteBuffer& blob,
                         const ModelParameters* reference) const override;

 private:
  double fraction_ = 0.05;
};

}  // namespace fleda
