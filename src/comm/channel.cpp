#include "comm/channel.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace fleda {

double ChannelStats::uplink_compression() const {
  return uplink_bytes > 0
             ? static_cast<double>(raw_uplink_bytes) /
                   static_cast<double>(uplink_bytes)
             : 1.0;
}

double ChannelStats::downlink_compression() const {
  return downlink_bytes > 0
             ? static_cast<double>(raw_downlink_bytes) /
                   static_cast<double>(downlink_bytes)
             : 1.0;
}

Channel::Channel(const CommConfig& config)
    : config_(config),
      uplink_codec_(make_codec(config.uplink, config.topk_fraction)),
      downlink_codec_(make_codec(config.downlink, config.topk_fraction)) {
  if (config.uplink_bytes_per_sec <= 0.0 ||
      config.downlink_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("Channel: bandwidth must be > 0");
  }
  // A delta downlink would need the server to track every client's
  // last-received model as the shared reference; broadcast() encodes
  // against nullptr, which for TopKDelta silently zeroes ~(1-k/n) of
  // the deployed weights. Reject it until per-client reference
  // tracking exists (see ROADMAP).
  if (config.downlink == CodecKind::kTopKDelta) {
    throw std::invalid_argument(
        "Channel: TopKDelta is an uplink-only codec (no shared downlink "
        "reference)");
  }
}

void Channel::bill_downlink(std::uint64_t bytes, std::uint64_t raw_bytes) {
  stats_.downlink_bytes += bytes;
  stats_.raw_downlink_bytes += raw_bytes;
  stats_.downlink_messages += 1;
  current_round_.downlink_bytes += bytes;
  current_round_.downlink_messages += 1;
}

void Channel::bill_uplink(std::uint64_t bytes, std::uint64_t raw_bytes) {
  stats_.uplink_bytes += bytes;
  stats_.raw_uplink_bytes += raw_bytes;
  stats_.uplink_messages += 1;
  current_round_.uplink_bytes += bytes;
  current_round_.uplink_messages += 1;
  round_uplink_total_ += bytes;
}

std::vector<std::shared_ptr<const ModelParameters>> Channel::broadcast(
    const std::vector<const ModelParameters*>& deployed) {
  // Encode (and decode) each distinct snapshot once; identical pointers
  // mean the same broadcast payload, and all recipients share the one
  // decoded copy. Distinct snapshots go through the codec in parallel,
  // mirroring collect().
  std::vector<const ModelParameters*> distinct;
  std::map<const ModelParameters*, std::size_t> index;
  for (const ModelParameters* p : deployed) {
    if (p == nullptr) throw std::invalid_argument("broadcast: null snapshot");
    if (index.emplace(p, distinct.size()).second) distinct.push_back(p);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes(distinct.size());
  std::vector<std::shared_ptr<const ModelParameters>> decoded(distinct.size());
  parallel_for(distinct.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const ByteBuffer blob = downlink_codec_->encode(*distinct[i], nullptr);
      sizes[i] = {blob.size(), raw_wire_bytes(*distinct[i])};
      decoded[i] = std::make_shared<const ModelParameters>(
          downlink_codec_->decode(blob, nullptr));
    }
  });
  std::vector<std::shared_ptr<const ModelParameters>> received;
  received.reserve(deployed.size());
  std::uint64_t wave_max = 0;
  for (const ModelParameters* p : deployed) {
    const auto& [bytes, raw] = sizes[index.at(p)];
    bill_downlink(bytes, raw);
    wave_max = std::max(wave_max, bytes);
    received.push_back(decoded[index.at(p)]);
  }
  // One wave of parallel downloads: the round's serial downlink time
  // grows by the largest message in the wave.
  round_downlink_serial_ += wave_max;
  return received;
}

std::vector<ModelParameters> Channel::collect(
    const std::vector<ModelParameters>& updates,
    const std::vector<const ModelParameters*>& references) {
  if (updates.size() != references.size()) {
    throw std::invalid_argument(
        "Channel::collect: " + std::to_string(updates.size()) +
        " updates vs " + std::to_string(references.size()) + " references");
  }
  const std::size_t n = updates.size();
  std::vector<ModelParameters> received(n);
  std::vector<std::uint64_t> bytes(n, 0), raw(n, 0);
  // Encode client-side and decode server-side per update; the pool
  // parallelizes across clients (stats are reduced serially below).
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const ByteBuffer blob = uplink_codec_->encode(updates[k], references[k]);
      bytes[k] = blob.size();
      raw[k] = raw_wire_bytes(updates[k]);
      received[k] = uplink_codec_->decode(blob, references[k]);
    }
  });
  for (std::size_t k = 0; k < n; ++k) bill_uplink(bytes[k], raw[k]);
  return received;
}

void Channel::end_round() {
  current_round_.round = static_cast<int>(stats_.rounds.size());
  current_round_.simulated_latency_s =
      2.0 * config_.per_message_latency_s +
      static_cast<double>(round_downlink_serial_) /
          config_.downlink_bytes_per_sec +
      static_cast<double>(round_uplink_total_) / config_.uplink_bytes_per_sec;
  stats_.simulated_latency_s += current_round_.simulated_latency_s;
  stats_.rounds.push_back(current_round_);
  current_round_ = RoundCommStats{};
  round_downlink_serial_ = 0;
  round_uplink_total_ = 0;
}

}  // namespace fleda
