#include "comm/channel.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace fleda {

double ChannelStats::uplink_compression() const {
  return uplink_bytes > 0
             ? static_cast<double>(raw_uplink_bytes) /
                   static_cast<double>(uplink_bytes)
             : 1.0;
}

double ChannelStats::downlink_compression() const {
  return downlink_bytes > 0
             ? static_cast<double>(raw_downlink_bytes) /
                   static_cast<double>(downlink_bytes)
             : 1.0;
}

Channel::Channel(const CommConfig& config)
    : config_(config),
      uplink_codec_(make_codec(config.uplink, config.topk_fraction)),
      downlink_codec_(make_codec(config.downlink, config.topk_fraction)) {
  if (config.uplink_bytes_per_sec <= 0.0 ||
      config.downlink_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("Channel: bandwidth must be > 0");
  }
  // A delta downlink would need the server to track every client's
  // last-received model as the shared reference; broadcast() encodes
  // against nullptr, which for TopKDelta silently zeroes ~(1-k/n) of
  // the deployed weights. Reject it until per-client reference
  // tracking exists (see ROADMAP).
  if (config.downlink == CodecKind::kTopKDelta) {
    throw std::invalid_argument(
        "Channel: TopKDelta is an uplink-only codec (no shared downlink "
        "reference)");
  }
}

void Channel::set_links(std::vector<ClientLink> links) {
  // Non-positive rates / negative latencies are the documented
  // "inherit the CommConfig default" sentinels; with_defaults
  // normalizes them wherever a link is actually used.
  links_ = std::move(links);
}

ClientLink ClientLink::with_defaults(const CommConfig& config) const {
  ClientLink l = *this;
  if (l.uplink_bytes_per_sec <= 0.0) {
    l.uplink_bytes_per_sec = config.uplink_bytes_per_sec;
  }
  if (l.downlink_bytes_per_sec <= 0.0) {
    l.downlink_bytes_per_sec = config.downlink_bytes_per_sec;
  }
  if (l.per_message_latency_s < 0.0) {
    l.per_message_latency_s = config.per_message_latency_s;
  }
  return l;
}

ClientLink Channel::link(std::size_t k) const {
  return (k < links_.size() ? links_[k] : ClientLink{})
      .with_defaults(config_);
}

void Channel::ensure_clients(std::size_t n) {
  if (traffic_.size() < n) traffic_.resize(n);
  if (residuals_.size() < n) residuals_.resize(n);
}

void Channel::bill_downlink(std::size_t client, std::uint64_t bytes,
                            std::uint64_t raw_bytes) {
  stats_.downlink_bytes += bytes;
  stats_.raw_downlink_bytes += raw_bytes;
  stats_.downlink_messages += 1;
  current_round_.downlink_bytes += bytes;
  current_round_.downlink_messages += 1;
  traffic_[client].downlink_bytes += bytes;
  traffic_[client].downlink_messages += 1;
}

void Channel::bill_uplink(std::size_t client, std::uint64_t bytes,
                          std::uint64_t raw_bytes) {
  stats_.uplink_bytes += bytes;
  stats_.raw_uplink_bytes += raw_bytes;
  stats_.uplink_messages += 1;
  current_round_.uplink_bytes += bytes;
  current_round_.uplink_messages += 1;
  traffic_[client].uplink_bytes += bytes;
  traffic_[client].uplink_messages += 1;
}

std::vector<std::shared_ptr<const ModelParameters>> Channel::broadcast(
    const std::vector<const ModelParameters*>& deployed) {
  // Encode (and decode) each distinct snapshot once; identical pointers
  // mean the same broadcast payload, and all recipients share the one
  // decoded copy. Distinct snapshots go through the codec in parallel,
  // mirroring collect().
  std::vector<const ModelParameters*> distinct;
  std::map<const ModelParameters*, std::size_t> index;
  for (const ModelParameters* p : deployed) {
    if (p == nullptr) throw std::invalid_argument("broadcast: null snapshot");
    if (index.emplace(p, distinct.size()).second) distinct.push_back(p);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes(distinct.size());
  std::vector<std::shared_ptr<const ModelParameters>> decoded(distinct.size());
  parallel_for(distinct.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const ByteBuffer blob = downlink_codec_->encode(*distinct[i], nullptr);
      sizes[i] = {blob.size(), raw_wire_bytes(*distinct[i])};
      decoded[i] = std::make_shared<const ModelParameters>(
          downlink_codec_->decode(blob, nullptr));
    }
  });
  ensure_clients(deployed.size());
  std::vector<std::shared_ptr<const ModelParameters>> received;
  received.reserve(deployed.size());
  for (std::size_t k = 0; k < deployed.size(); ++k) {
    const auto& [bytes, raw] = sizes[index.at(deployed[k])];
    bill_downlink(k, bytes, raw);
    received.push_back(decoded[index.at(deployed[k])]);
  }
  return received;
}

ModelParameters Channel::uplink_roundtrip(std::size_t client,
                                          const ModelParameters& update,
                                          const ModelParameters* reference,
                                          std::uint64_t* bytes,
                                          std::uint64_t* raw_bytes) {
  const bool feedback = config_.error_feedback && uplink_codec_->lossy();
  // Error feedback: transmit update + residual, then keep what the
  // codec dropped this round for the next one.
  const ModelParameters* to_send = &update;
  ModelParameters compensated;
  if (feedback && !residuals_[client].empty() &&
      residuals_[client].structurally_equal(update)) {
    compensated = update;
    compensated.add_scaled(residuals_[client], 1.0);
    to_send = &compensated;
  }
  const ByteBuffer blob = uplink_codec_->encode(*to_send, reference);
  *bytes = blob.size();
  *raw_bytes = raw_wire_bytes(update);
  ModelParameters decoded = uplink_codec_->decode(blob, reference);
  if (feedback) {
    ModelParameters residual = *to_send;
    residual.add_scaled(decoded, -1.0);
    residuals_[client] = std::move(residual);
  }
  return decoded;
}

std::vector<ModelParameters> Channel::collect(
    const std::vector<ModelParameters>& updates,
    const std::vector<const ModelParameters*>& references) {
  if (updates.size() != references.size()) {
    throw std::invalid_argument(
        "Channel::collect: " + std::to_string(updates.size()) +
        " updates vs " + std::to_string(references.size()) + " references");
  }
  const std::size_t n = updates.size();
  ensure_clients(n);
  std::vector<ModelParameters> received(n);
  std::vector<std::uint64_t> bytes(n, 0), raw(n, 0);
  // Encode client-side and decode server-side per update; the pool
  // parallelizes across clients (distinct client indices touch
  // distinct residual slots, so the error-feedback state is safe; the
  // stats are reduced serially below).
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      received[k] = uplink_roundtrip(k, updates[k], references[k], &bytes[k],
                                     &raw[k]);
    }
  });
  for (std::size_t k = 0; k < n; ++k) bill_uplink(k, bytes[k], raw[k]);
  return received;
}

std::shared_ptr<const ModelParameters> Channel::send_down(
    std::size_t client, const ModelParameters& snapshot,
    std::uint64_t* bytes_out) {
  ensure_clients(client + 1);
  const ByteBuffer blob = downlink_codec_->encode(snapshot, nullptr);
  bill_downlink(client, blob.size(), raw_wire_bytes(snapshot));
  if (bytes_out != nullptr) *bytes_out = blob.size();
  return std::make_shared<const ModelParameters>(
      downlink_codec_->decode(blob, nullptr));
}

ModelParameters Channel::send_up(std::size_t client,
                                 const ModelParameters& update,
                                 const ModelParameters* reference,
                                 std::uint64_t* bytes_out) {
  ensure_clients(client + 1);
  std::uint64_t bytes = 0, raw = 0;
  ModelParameters decoded =
      uplink_roundtrip(client, update, reference, &bytes, &raw);
  bill_uplink(client, bytes, raw);
  if (bytes_out != nullptr) *bytes_out = bytes;
  return decoded;
}

void Channel::end_round() {
  // Standalone latency model: every client's transfers are serial on
  // its own link, clients run in parallel — the round costs as much as
  // its slowest client's traffic.
  double slowest = 0.0;
  for (std::size_t k = 0; k < traffic_.size(); ++k) {
    const ClientRoundTraffic& t = traffic_[k];
    const ClientLink l = link(k);
    const double serial =
        static_cast<double>(t.downlink_messages + t.uplink_messages) *
            l.per_message_latency_s +
        static_cast<double>(t.downlink_bytes) / l.downlink_bytes_per_sec +
        static_cast<double>(t.uplink_bytes) / l.uplink_bytes_per_sec;
    slowest = std::max(slowest, serial);
  }
  end_round(slowest);
}

void Channel::end_round(double simulated_duration_s) {
  current_round_.round = static_cast<int>(stats_.rounds.size());
  current_round_.simulated_latency_s = simulated_duration_s;
  stats_.simulated_latency_s += current_round_.simulated_latency_s;
  stats_.rounds.push_back(current_round_);
  current_round_ = RoundCommStats{};
  std::fill(traffic_.begin(), traffic_.end(), ClientRoundTraffic{});
}

}  // namespace fleda
