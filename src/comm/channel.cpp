#include "comm/channel.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

double ChannelStats::uplink_compression() const {
  return uplink_bytes > 0
             ? static_cast<double>(raw_uplink_bytes) /
                   static_cast<double>(uplink_bytes)
             : 1.0;
}

double ChannelStats::downlink_compression() const {
  return downlink_bytes > 0
             ? static_cast<double>(raw_downlink_bytes) /
                   static_cast<double>(downlink_bytes)
             : 1.0;
}

Channel::Channel(const CommConfig& config)
    : config_(config),
      uplink_codec_(make_codec(config.uplink, config.topk_fraction)),
      downlink_codec_(make_codec(config.downlink, config.topk_fraction)),
      downlink_delta_(config.downlink == CodecKind::kTopKDelta) {
  if (config.uplink_bytes_per_sec <= 0.0 ||
      config.downlink_bytes_per_sec <= 0.0) {
    throw std::invalid_argument("Channel: bandwidth must be > 0");
  }
}

void Channel::set_links(std::vector<ClientLink> links) {
  // Non-positive rates / negative latencies are the documented
  // "inherit the CommConfig default" sentinels; with_defaults
  // normalizes them wherever a link is actually used.
  links_ = std::move(links);
}

ClientLink ClientLink::with_defaults(const CommConfig& config) const {
  ClientLink l = *this;
  if (l.uplink_bytes_per_sec <= 0.0) {
    l.uplink_bytes_per_sec = config.uplink_bytes_per_sec;
  }
  if (l.downlink_bytes_per_sec <= 0.0) {
    l.downlink_bytes_per_sec = config.downlink_bytes_per_sec;
  }
  if (l.per_message_latency_s < 0.0) {
    l.per_message_latency_s = config.per_message_latency_s;
  }
  return l;
}

ClientLink Channel::link(std::size_t k) const {
  return (k < links_.size() ? links_[k] : ClientLink{})
      .with_defaults(config_);
}

void Channel::ensure_clients(std::size_t n) {
  if (traffic_.size() < n) traffic_.resize(n);
  if (residuals_.size() < n) residuals_.resize(n);
  if (downlink_refs_.size() < n) downlink_refs_.resize(n);
}

void Channel::bill_downlink(std::size_t client, std::uint64_t bytes,
                            std::uint64_t raw_bytes) {
  static Counter& billed =
      MetricsRegistry::global().counter("fleda.comm.downlink_bytes");
  billed.add(bytes);
  stats_.downlink_bytes += bytes;
  stats_.raw_downlink_bytes += raw_bytes;
  stats_.downlink_messages += 1;
  current_round_.downlink_bytes += bytes;
  current_round_.downlink_messages += 1;
  traffic_[client].downlink_bytes += bytes;
  traffic_[client].downlink_messages += 1;
}

void Channel::bill_uplink(std::size_t client, std::uint64_t bytes,
                          std::uint64_t raw_bytes) {
  static Counter& billed =
      MetricsRegistry::global().counter("fleda.comm.uplink_bytes");
  billed.add(bytes);
  stats_.uplink_bytes += bytes;
  stats_.raw_uplink_bytes += raw_bytes;
  stats_.uplink_messages += 1;
  current_round_.uplink_bytes += bytes;
  current_round_.uplink_messages += 1;
  traffic_[client].uplink_bytes += bytes;
  traffic_[client].uplink_messages += 1;
}

std::vector<std::shared_ptr<const ModelParameters>> Channel::broadcast(
    const std::vector<const ModelParameters*>& deployed) {
  std::vector<std::size_t> recipients(deployed.size());
  for (std::size_t k = 0; k < recipients.size(); ++k) recipients[k] = k;
  return broadcast(deployed, recipients);
}

std::vector<std::shared_ptr<const ModelParameters>> Channel::broadcast(
    const std::vector<const ModelParameters*>& deployed,
    const std::vector<std::size_t>& recipients) {
  if (deployed.size() != recipients.size()) {
    throw std::invalid_argument(
        "Channel::broadcast: " + std::to_string(deployed.size()) +
        " snapshots vs " + std::to_string(recipients.size()) + " recipients");
  }
  std::size_t max_client = 0;
  for (std::size_t k : recipients) max_client = std::max(max_client, k + 1);
  ensure_clients(max_client);
  // Encode (and decode) each distinct (snapshot, delta-reference) pair
  // once; identical pairs mean the same broadcast payload, and all
  // their recipients share the one decoded copy. Without a delta
  // downlink the reference is always null, so this degenerates to
  // distinct snapshots. Distinct payloads go through the codec in
  // parallel, mirroring collect().
  using PayloadKey = std::pair<const ModelParameters*, const ModelParameters*>;
  std::vector<PayloadKey> distinct;
  std::map<PayloadKey, std::size_t> index;
  std::vector<std::size_t> payload_of(deployed.size());
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    if (deployed[i] == nullptr) {
      throw std::invalid_argument("broadcast: null snapshot");
    }
    const ModelParameters* reference =
        downlink_delta_ ? downlink_refs_[recipients[i]].get() : nullptr;
    const PayloadKey key{deployed[i], reference};
    const auto [it, inserted] = index.emplace(key, distinct.size());
    if (inserted) distinct.push_back(key);
    payload_of[i] = it->second;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes(distinct.size());
  std::vector<std::shared_ptr<const ModelParameters>> decoded(distinct.size());
  parallel_for(distinct.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& [snapshot, reference] = distinct[i];
      ByteBuffer blob;
      {
        ProfileScope enc(phase::kCodecEncode);
        blob = downlink_codec_->encode(*snapshot, reference);
      }
      sizes[i] = {blob.size(), raw_wire_bytes(*snapshot)};
      ProfileScope dec(phase::kCodecDecode);
      decoded[i] = std::make_shared<const ModelParameters>(
          downlink_codec_->decode(blob, reference));
    }
  });
  std::vector<std::shared_ptr<const ModelParameters>> received;
  received.reserve(deployed.size());
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    const auto& [bytes, raw] = sizes[payload_of[i]];
    bill_downlink(recipients[i], bytes, raw);
    received.push_back(decoded[payload_of[i]]);
    // Both sides now hold the decoded snapshot: it becomes client
    // recipients[i]'s reference for the next delta downlink.
    if (downlink_delta_) downlink_refs_[recipients[i]] = decoded[payload_of[i]];
  }
  return received;
}

ModelParameters Channel::uplink_roundtrip(std::size_t client,
                                          const ModelParameters& update,
                                          const ModelParameters* reference,
                                          std::uint64_t* bytes,
                                          std::uint64_t* raw_bytes) {
  const bool feedback = config_.error_feedback && uplink_codec_->lossy();
  // Error feedback: transmit update + residual, then keep what the
  // codec dropped this round for the next one.
  const ModelParameters* to_send = &update;
  ModelParameters compensated;
  if (feedback && !residuals_[client].empty() &&
      residuals_[client].structurally_equal(update)) {
    compensated = update;
    compensated.add_scaled(residuals_[client], 1.0);
    to_send = &compensated;
  }
  ByteBuffer blob;
  {
    ProfileScope enc(phase::kCodecEncode);
    blob = uplink_codec_->encode(*to_send, reference);
  }
  *bytes = blob.size();
  *raw_bytes = raw_wire_bytes(update);
  ModelParameters decoded;
  {
    ProfileScope dec(phase::kCodecDecode);
    decoded = uplink_codec_->decode(blob, reference);
  }
  if (feedback) {
    ModelParameters residual = *to_send;
    residual.add_scaled(decoded, -1.0);
    residuals_[client] = std::move(residual);
  }
  return decoded;
}

std::vector<ModelParameters> Channel::collect(
    const std::vector<ModelParameters>& updates,
    const std::vector<const ModelParameters*>& references) {
  std::vector<std::size_t> senders(updates.size());
  for (std::size_t k = 0; k < senders.size(); ++k) senders[k] = k;
  return collect(updates, references, senders);
}

std::vector<ModelParameters> Channel::collect(
    const std::vector<ModelParameters>& updates,
    const std::vector<const ModelParameters*>& references,
    const std::vector<std::size_t>& senders) {
  if (updates.size() != references.size() ||
      updates.size() != senders.size()) {
    throw std::invalid_argument(
        "Channel::collect: " + std::to_string(updates.size()) +
        " updates vs " + std::to_string(references.size()) +
        " references vs " + std::to_string(senders.size()) + " senders");
  }
  const std::size_t n = updates.size();
  std::size_t max_client = 0;
  for (std::size_t k : senders) max_client = std::max(max_client, k + 1);
  ensure_clients(max_client);
  std::vector<ModelParameters> received(n);
  std::vector<std::uint64_t> bytes(n, 0), raw(n, 0);
  // Encode client-side and decode server-side per update; the pool
  // parallelizes across clients (distinct sender indices touch
  // distinct residual slots, so the error-feedback state is safe; the
  // stats are reduced serially below).
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      received[i] = uplink_roundtrip(senders[i], updates[i], references[i],
                                     &bytes[i], &raw[i]);
    }
  });
  for (std::size_t i = 0; i < n; ++i) bill_uplink(senders[i], bytes[i], raw[i]);
  return received;
}

std::vector<ModelParameters> Channel::collect(
    std::vector<ModelParameters>&& updates,
    const std::vector<const ModelParameters*>& references,
    const std::vector<std::size_t>& senders) {
  if (updates.size() != references.size() ||
      updates.size() != senders.size()) {
    throw std::invalid_argument(
        "Channel::collect: " + std::to_string(updates.size()) +
        " updates vs " + std::to_string(references.size()) +
        " references vs " + std::to_string(senders.size()) + " senders");
  }
  const std::size_t n = updates.size();
  std::size_t max_client = 0;
  for (std::size_t k : senders) max_client = std::max(max_client, k + 1);
  ensure_clients(max_client);
  std::vector<ModelParameters> received(n);
  std::vector<std::uint64_t> bytes(n, 0), raw(n, 0);
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // The raw update dies as soon as its wire copy exists: `u` takes
      // the buffers out of the caller's vector and drops them at the
      // end of the iteration, so peak memory is one cohort of decoded
      // updates plus the in-flight few, not raw + decoded side by side.
      const ModelParameters u = std::move(updates[i]);
      received[i] =
          uplink_roundtrip(senders[i], u, references[i], &bytes[i], &raw[i]);
    }
  });
  updates.clear();
  for (std::size_t i = 0; i < n; ++i) bill_uplink(senders[i], bytes[i], raw[i]);
  return received;
}

void Channel::collect_streaming(
    const std::vector<std::size_t>& senders,
    const std::vector<const ModelParameters*>& references,
    const std::vector<std::size_t>& lane_offsets,
    const std::function<ModelParameters(std::size_t)>& produce,
    const std::function<void(std::size_t, std::size_t, ModelParameters&&)>&
        consume) {
  const std::size_t n = senders.size();
  if (references.size() != n) {
    throw std::invalid_argument(
        "Channel::collect_streaming: " + std::to_string(n) + " senders vs " +
        std::to_string(references.size()) + " references");
  }
  if (lane_offsets.size() < 2 || lane_offsets.front() != 0 ||
      lane_offsets.back() != n) {
    throw std::invalid_argument(
        "Channel::collect_streaming: lane_offsets must cover [0, " +
        std::to_string(n) + ") (use fold_lane_offsets)");
  }
  for (std::size_t l = 1; l < lane_offsets.size(); ++l) {
    if (lane_offsets[l] < lane_offsets[l - 1]) {
      throw std::invalid_argument(
          "Channel::collect_streaming: lane_offsets must be non-decreasing");
    }
  }
  std::size_t max_client = 0;
  for (std::size_t k : senders) max_client = std::max(max_client, k + 1);
  ensure_clients(max_client);
  const std::size_t lanes = lane_offsets.size() - 1;
  std::vector<std::uint64_t> bytes(n, 0), raw(n, 0);
  // Pool tasks must not throw; produce/consume legitimately can (fold
  // validation rejecting a poisoned update). Each lane captures its
  // first error and the earliest lane's is rethrown below — a stable
  // choice regardless of which lane faulted first in wall time.
  std::vector<std::exception_ptr> lane_error(lanes);
  parallel_for(lanes, [&](std::size_t lane_begin, std::size_t lane_end) {
    for (std::size_t l = lane_begin; l < lane_end; ++l) {
      try {
        for (std::size_t i = lane_offsets[l]; i < lane_offsets[l + 1]; ++i) {
          ModelParameters update = produce(i);
          ModelParameters decoded = uplink_roundtrip(
              senders[i], update, references[i], &bytes[i], &raw[i]);
          update = ModelParameters{};  // wire copy exists; free the raw one
          consume(l, i, std::move(decoded));
        }
      } catch (...) {
        lane_error[l] = std::current_exception();
      }
    }
  });
  for (std::size_t l = 0; l < lanes; ++l) {
    if (lane_error[l]) std::rethrow_exception(lane_error[l]);
  }
  for (std::size_t i = 0; i < n; ++i) bill_uplink(senders[i], bytes[i], raw[i]);
}

std::shared_ptr<const ModelParameters> Channel::send_down(
    std::size_t client, const ModelParameters& snapshot,
    std::uint64_t* bytes_out) {
  ensure_clients(client + 1);
  const ModelParameters* reference =
      downlink_delta_ ? downlink_refs_[client].get() : nullptr;
  ByteBuffer blob;
  {
    ProfileScope enc(phase::kCodecEncode);
    blob = downlink_codec_->encode(snapshot, reference);
  }
  bill_downlink(client, blob.size(), raw_wire_bytes(snapshot));
  if (bytes_out != nullptr) *bytes_out = blob.size();
  std::shared_ptr<const ModelParameters> decoded;
  {
    ProfileScope dec(phase::kCodecDecode);
    decoded = std::make_shared<const ModelParameters>(
        downlink_codec_->decode(blob, reference));
  }
  if (downlink_delta_) downlink_refs_[client] = decoded;
  return decoded;
}

ModelParameters Channel::send_up(std::size_t client,
                                 const ModelParameters& update,
                                 const ModelParameters* reference,
                                 std::uint64_t* bytes_out) {
  ensure_clients(client + 1);
  std::uint64_t bytes = 0, raw = 0;
  ModelParameters decoded =
      uplink_roundtrip(client, update, reference, &bytes, &raw);
  bill_uplink(client, bytes, raw);
  if (bytes_out != nullptr) *bytes_out = bytes;
  return decoded;
}

void Channel::end_round() {
  // Standalone latency model: every client's transfers are serial on
  // its own link, clients run in parallel — the round costs as much as
  // its slowest client's traffic.
  double slowest = 0.0;
  for (std::size_t k = 0; k < traffic_.size(); ++k) {
    const ClientRoundTraffic& t = traffic_[k];
    const ClientLink l = link(k);
    const double serial =
        static_cast<double>(t.downlink_messages + t.uplink_messages) *
            l.per_message_latency_s +
        static_cast<double>(t.downlink_bytes) / l.downlink_bytes_per_sec +
        static_cast<double>(t.uplink_bytes) / l.uplink_bytes_per_sec;
    slowest = std::max(slowest, serial);
  }
  end_round(slowest);
}

void Channel::end_round(double simulated_duration_s) {
  current_round_.round = static_cast<int>(stats_.rounds.size());
  current_round_.simulated_latency_s = simulated_duration_s;
  stats_.simulated_latency_s += current_round_.simulated_latency_s;
  stats_.rounds.push_back(current_round_);
  current_round_ = RoundCommStats{};
  std::fill(traffic_.begin(), traffic_.end(), ClientRoundTraffic{});
}

}  // namespace fleda
