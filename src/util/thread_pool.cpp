#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace fleda {
namespace {

// Set while a pool thread is executing a parallel_for chunk so nested
// calls fall back to serial execution instead of deadlocking.
thread_local bool t_inside_parallel_region = false;

std::size_t env_thread_count() {
  const char* env = std::getenv("FLEDA_THREADS");
  if (env != nullptr) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop (no predicate lambda): the guarded-member
      // reads stay inside this annotated scope, and cv_.wait's hidden
      // release/reacquire of mutex_ is the standard idiom the analysis
      // accepts — stop_/tasks_ are only ever read with the lock held.
      while (!stop_ && tasks_.empty()) cv_.wait(lock.native());
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  std::size_t max_chunks = size() * 4;
  std::size_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1 || t_inside_parallel_region) {
    body(0, n);
    return;
  }

  // Shared context: queued helper tasks may start only after this call
  // has already returned (work stolen by the caller), so everything
  // they touch must be owned by shared_ptr, not the caller's stack.
  struct Context {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    std::size_t chunk_size = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    // Guards nothing directly: the wait predicate is the atomic `done`
    // counter; the mutex exists only for the condition_variable
    // handshake (no lost-wakeup between the final fetch_add and wait).
    std::mutex done_mutex;  // fleda-lint: allow(mutex-guarded)
    std::condition_variable done_cv;
  };
  auto ctx = std::make_shared<Context>();
  ctx->n = n;
  ctx->chunk_size = (n + chunks - 1) / chunks;
  ctx->body = &body;  // only dereferenced while the caller is waiting

  auto run_chunks = [ctx] {
    bool prev = t_inside_parallel_region;
    t_inside_parallel_region = true;
    for (;;) {
      // Relaxed: `next` only allocates disjoint index ranges; the data
      // the body touches was published to the workers by the submit
      // mutex, and completion is published through `done` below.
      std::size_t begin =
          ctx->next.fetch_add(ctx->chunk_size, std::memory_order_relaxed);
      if (begin >= ctx->n) break;
      std::size_t end = std::min(ctx->n, begin + ctx->chunk_size);
      (*ctx->body)(begin, end);
      // Release: every write the body made happens-before the waiter's
      // acquire load observing done == n (RMWs keep the release
      // sequence intact across workers).
      std::size_t finished =
          ctx->done.fetch_add(end - begin, std::memory_order_release) +
          (end - begin);
      if (finished == ctx->n) {
        std::lock_guard<std::mutex> lock(ctx->done_mutex);
        ctx->done_cv.notify_all();
      }
    }
    t_inside_parallel_region = prev;
  };

  // Dispatch helpers to the pool, then participate from this thread so
  // callers always make progress even if all workers are busy.
  std::size_t helpers = std::min(chunks - 1, size());
  for (std::size_t i = 0; i < helpers; ++i) submit(run_chunks);
  run_chunks();

  std::unique_lock<std::mutex> lock(ctx->done_mutex);
  ctx->done_cv.wait(lock, [&] {
    return ctx->done.load(std::memory_order_acquire) == n;
  });
}

namespace {

// Global-pool slot: an atomic fast path for the steady state plus a
// mutex guarding (re)creation. unique_ptr rather than a function-local
// static so reset_global can join and rebuild the pool.
Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool FLEDA_GUARDED_BY(g_pool_mutex);
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

}  // namespace

ThreadPool& ThreadPool::global() {
  ThreadPool* pool = g_pool_ptr.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  MutexLock lock(g_pool_mutex);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(env_thread_count());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return *g_pool;
}

void ThreadPool::reset_global(std::size_t num_threads) {
  MutexLock lock(g_pool_mutex);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins the old workers
  g_pool = std::make_unique<ThreadPool>(
      num_threads > 0 ? num_threads : env_thread_count());
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(n, body, grain);
}

}  // namespace fleda
