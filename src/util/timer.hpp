// Wall-clock timer for progress reporting in benches and examples.
// Timer is now an alias of the profiler's StopWatch — the single
// steady-clock wrapper in the codebase — so manual bench timings and
// ProfileScope phase totals read the same clock by construction.
#pragma once

#include "obs/profiler.hpp"

namespace fleda {

using Timer = StopWatch;

}  // namespace fleda
