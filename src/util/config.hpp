// Run-scale configuration shared by benches and examples.
//
// The paper trains at full scale (7,131 placements, R=50 rounds,
// S=100 steps). A CPU-only reproduction scales those knobs down; the
// mapping is centralized here so every bench/example agrees, and is
// selectable with the FLEDA_SCALE environment variable:
//   FLEDA_SCALE=smoke  - seconds-long CI runs
//   FLEDA_SCALE=quick  - default; minutes-long, preserves result shape
//   FLEDA_SCALE=full   - closest to the paper that CPU allows
#pragma once

#include <string>

namespace fleda {

struct RunScale {
  std::string name = "quick";
  int grid = 32;              // feature map width/height (w = h)
  int rounds = 10;            // FL rounds R (paper: 50)
  int steps_per_round = 12;   // local update steps S (paper: 100)
  int finetune_steps = 200;   // personalization steps S' (paper: 5000)
  int batch_size = 8;
  double placement_fraction = 0.12;  // fraction of Table 2 placement counts
};

// Resolves a scale by name ("smoke" | "quick" | "full"); unknown names
// fall back to quick with a warning.
RunScale resolve_scale(const std::string& name);

// Reads FLEDA_SCALE (default "quick").
RunScale scale_from_env();

// Paper-verbatim training hyper-parameters (Section 5.1).
struct PaperHyperParams {
  double learning_rate = 2e-4;
  double l2_regularization = 1e-5;
  double fedprox_mu = 1e-4;
  double alpha_portion = 0.5;
  int num_clusters = 4;   // IFCA / assigned clustering C
  int num_clients = 9;    // K
};

}  // namespace fleda
