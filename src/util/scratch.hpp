// Thread-local scratch buffers for kernel intermediates (im2col column
// matrices, their gradients, and the packed GEMM panels). Convolution
// layers need multi-MB temporaries per call; allocating them fresh each
// step costs more in page faults and zero-fill than the math itself.
// Buffers persist per thread and per slot, growing monotonically.
#pragma once

#include <cstddef>
#include <vector>

namespace fleda {

enum class ScratchSlot : int {
  kCols = 0,
  kColsGrad = 1,
  kAux = 2,
  kPackA = 3,  // packed A micro-panels (gemm_packed)
  kPackB = 4,  // packed B panel block (gemm_packed)
};

inline constexpr int kNumScratchSlots = 5;

// Returns a thread-local float buffer of at least `n` elements for the
// given slot. Contents are unspecified — callers must fully overwrite
// (or explicitly zero) what they read.
float* thread_scratch(ScratchSlot slot, std::size_t n);

// Same, but the returned pointer is 64-byte aligned (cache-line /
// vector-register friendly — the packed GEMM panels want this so the
// compiler's vectorized loads never straddle lines).
float* thread_scratch_aligned(ScratchSlot slot, std::size_t n);

}  // namespace fleda
