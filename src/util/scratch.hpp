// Thread-local scratch buffers for kernel intermediates (im2col column
// matrices and their gradients). Convolution layers need multi-MB
// temporaries per call; allocating them fresh each step costs more in
// page faults and zero-fill than the math itself. Buffers persist per
// thread and per slot, growing monotonically.
#pragma once

#include <cstddef>
#include <vector>

namespace fleda {

enum class ScratchSlot : int {
  kCols = 0,
  kColsGrad = 1,
  kAux = 2,
};

// Returns a thread-local float buffer of at least `n` elements for the
// given slot. Contents are unspecified — callers must fully overwrite
// (or explicitly zero) what they read.
float* thread_scratch(ScratchSlot slot, std::size_t n);

}  // namespace fleda
