// A small fixed-size thread pool plus a parallel_for helper used by the
// tensor kernels (matmul, im2col-based convolution) and the data
// generator. The pool is created lazily as a process-wide singleton so
// library users never manage threads themselves.
//
// parallel_for(n, body) splits [0, n) into contiguous chunks and runs
// `body(begin, end)` on pool threads, blocking until all chunks are
// done. For tiny n the call degenerates to a serial loop to avoid
// synchronization overhead. Nested parallel_for calls execute the
// inner loop serially (the pool does not support re-entrancy), which
// keeps kernels safe to compose.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_safety.hpp"

namespace fleda {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task; tasks must not throw.
  void submit(std::function<void()> task);

  // Runs body(begin, end) over chunks of [0, n). Blocks until complete.
  // grain is the minimum chunk size worth dispatching to a thread.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  // The process-wide pool. Thread count comes from FLEDA_THREADS or
  // hardware_concurrency (minimum 1 worker).
  static ThreadPool& global();

  // Replaces the global pool with one of `num_threads` workers
  // (0 = re-read FLEDA_THREADS / hardware_concurrency). Joins the old
  // pool first; callers must ensure no parallel work is in flight.
  // Exists so determinism tests can rerun the same computation under
  // different pool sizes within one process.
  static void reset_global(std::size_t num_threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_ FLEDA_GUARDED_BY(mutex_);
  bool stop_ FLEDA_GUARDED_BY(mutex_) = false;
};

// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace fleda
