// Minimal command-line flag parsing for the example binaries.
//
//   CliParser cli(argc, argv);
//   int rounds = cli.get_int("rounds", 10);
//   std::string model = cli.get_string("model", "flnet");
//   if (cli.has("help")) { ... }
//
// Accepted syntaxes: --name=value, --name value, --flag (boolean).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fleda {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& def = "") const;
  int get_int(const std::string& name, int def = 0) const;
  double get_double(const std::string& name, double def = 0.0) const;
  bool get_bool(const std::string& name, bool def = false) const;

  // Arguments that were not --flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  // Unrecognized-flag detection: names seen on the command line.
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fleda
