#include "util/scratch.hpp"

#include <cstdint>

namespace fleda {
namespace {

std::vector<float>& slot_buffer(ScratchSlot slot) {
  thread_local std::vector<float> buffers[kNumScratchSlots];
  return buffers[static_cast<int>(slot)];
}

constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

}  // namespace

float* thread_scratch(ScratchSlot slot, std::size_t n) {
  auto& buf = slot_buffer(slot);
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

float* thread_scratch_aligned(ScratchSlot slot, std::size_t n) {
  // Over-allocate one alignment quantum and round the pointer up; the
  // buffer grows monotonically so the aligned base is stable until the
  // next larger request.
  auto& buf = slot_buffer(slot);
  if (buf.size() < n + kAlignFloats) buf.resize(n + kAlignFloats);
  auto addr = reinterpret_cast<std::uintptr_t>(buf.data());
  const std::uintptr_t aligned = (addr + kAlignBytes - 1) & ~(kAlignBytes - 1);
  return reinterpret_cast<float*>(aligned);
}

}  // namespace fleda
