#include "util/scratch.hpp"

namespace fleda {

float* thread_scratch(ScratchSlot slot, std::size_t n) {
  thread_local std::vector<float> buffers[3];
  auto& buf = buffers[static_cast<int>(slot)];
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

}  // namespace fleda
