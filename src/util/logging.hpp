// Lightweight leveled logging for fleda.
//
// Usage:
//   FLEDA_LOG_INFO("round %d done, auc=%.3f", r, auc);
//
// The level is controlled globally (set_log_level) or via the
// FLEDA_LOG_LEVEL environment variable ("debug", "info", "warn",
// "error", "off"). Logging is thread-safe: each message is formatted
// into a local buffer, then handed to the sink under a mutex, so
// concurrent messages never interleave mid-line. The default sink
// writes to stderr; set_log_sink redirects the stream (e.g. into a
// test capture or a service's log shipper).
#pragma once

#include <cstdarg>
#include <cstddef>
#include <string>

namespace fleda {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Sets the global log level threshold. Messages below it are dropped.
void set_log_level(LogLevel level);

// Returns the current global log level (initialized from
// FLEDA_LOG_LEVEL on first use, defaulting to kInfo).
LogLevel log_level();

// Parses "debug" / "info" / "warn" / "error" / "off"; returns kInfo on
// unknown input.
LogLevel parse_log_level(const std::string& name);

// Core logging entry point; prefer the FLEDA_LOG_* macros.
void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) __attribute__((format(printf, 4, 5)));

// Receives one fully formatted line (trailing '\n' included). Called
// with the sink lock held — keep implementations reentrancy-free (no
// logging from inside a sink).
using LogSink = void (*)(const char* line, std::size_t length);

// Replaces the process-wide sink; nullptr restores the stderr default.
// Returns the previous sink (nullptr when it was the default).
LogSink set_log_sink(LogSink sink);

}  // namespace fleda

#define FLEDA_LOG_DEBUG(...) \
  ::fleda::log_message(::fleda::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define FLEDA_LOG_INFO(...) \
  ::fleda::log_message(::fleda::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define FLEDA_LOG_WARN(...) \
  ::fleda::log_message(::fleda::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define FLEDA_LOG_ERROR(...) \
  ::fleda::log_message(::fleda::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)
