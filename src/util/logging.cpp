#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <vector>

#include "util/thread_safety.hpp"

namespace fleda {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

// The process-wide sink slot. The mutex both guards the pointer and
// serializes sink invocations, so a swap can never race a write and
// two threads' lines never interleave inside one sink call.
struct SinkSlot {
  Mutex mutex;
  LogSink sink FLEDA_GUARDED_BY(mutex) = nullptr;  // nullptr = stderr
};

SinkSlot& sink_slot() {
  // Leaked: messages logged from exiting threads during static
  // destruction must never touch a destroyed mutex.
  static SinkSlot* slot = new SinkSlot();
  return *slot;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

LogLevel init_from_env() {
  const char* env = std::getenv("FLEDA_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  return parse_log_level(env);
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    LogLevel from_env = init_from_env();
    g_level.store(static_cast<int>(from_env), std::memory_order_relaxed);
    return from_env;
  }
  return static_cast<LogLevel>(v);
}

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;

  // Strip directories from __FILE__ for compact output.
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  char head[160];
  std::snprintf(head, sizeof(head), "[%s %s:%d] ", level_name(level), base,
                line);

  char out[1224];
  int n = std::snprintf(out, sizeof(out), "%s%s\n", head, body);
  if (n < 0) return;
  const std::size_t len =
      std::min(static_cast<std::size_t>(n), sizeof(out) - 1);

  SinkSlot& slot = sink_slot();
  MutexLock lock(slot.mutex);
  if (slot.sink != nullptr) {
    slot.sink(out, len);
  } else {
    std::fwrite(out, 1, len, stderr);
  }
}

LogSink set_log_sink(LogSink sink) {
  SinkSlot& slot = sink_slot();
  MutexLock lock(slot.mutex);
  LogSink previous = slot.sink;
  slot.sink = sink;
  return previous;
}

}  // namespace fleda
