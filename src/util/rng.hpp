// Deterministic random number generation for fleda.
//
// All stochastic components (netlist generation, placement, parameter
// init, batching) draw from an explicitly seeded Rng so that every
// experiment is reproducible from a single root seed. The generator is
// xoshiro256++ seeded through splitmix64, which gives high-quality
// streams from small integer seeds and allows cheap independent
// sub-streams via Rng::fork.
#pragma once

#include <cstdint>
#include <vector>

namespace fleda {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Box-Muller (cached second sample).
  double normal();
  double normal(double mean, double stddev);

  // Bernoulli trial with probability p.
  bool bernoulli(double p);

  // Exponential with rate lambda (> 0).
  double exponential(double lambda);

  // Samples an index from unnormalized non-negative weights.
  // Returns weights.size()-1 if the total weight is zero.
  std::size_t categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Returns an independent generator derived from this one's stream
  // and the given tag; forking with distinct tags yields distinct,
  // reproducible sub-streams.
  Rng fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fleda
