#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fleda {

AsciiTable::AsciiTable(std::string title) : title_(std::move(title)) {}

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::size_t AsciiTable::num_cols() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  return cols;
}

std::string AsciiTable::to_string() const {
  std::size_t cols = num_cols();
  if (cols == 0) return title_.empty() ? "" : title_ + "\n";

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto hline = [&]() {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c) {
      s += std::string(width[c] + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << hline();
  if (!header_.empty()) {
    out << render_row(header_);
    out << hline();
  }
  for (const auto& r : rows_) out << render_row(r);
  out << hline();
  return out.str();
}

void AsciiTable::print() const {
  std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace fleda
