#include "util/cli.hpp"

#include <cstdlib>

namespace fleda {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" if the next token is not itself a flag, else a
    // boolean "--name".
    if (i + 1 < argc) {
      std::string next = argv[i + 1];
      if (next.size() < 2 || next.substr(0, 2) != "--") {
        flags_[body] = next;
        ++i;
        continue;
      }
    }
    flags_[body] = "true";
  }
}

bool CliParser::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliParser::get_string(const std::string& name,
                                  const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int CliParser::get_int(const std::string& name, int def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

double CliParser::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliParser::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<std::string> CliParser::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, _] : flags_) names.push_back(k);
  return names;
}

}  // namespace fleda
