// Clang thread-safety-analysis capabilities for fleda's concurrency
// surface, plus annotated lock types the library's lock-protected
// classes use instead of the raw std primitives.
//
// The FLEDA_* macros expand to Clang's capability attributes under
// Clang and to nothing everywhere else, so GCC builds are unaffected
// while the Clang CI job compiles the library with
// -Werror=thread-safety and statically proves the lock discipline:
// which members a mutex protects (FLEDA_GUARDED_BY), which functions
// must be called with it held (FLEDA_REQUIRES), and which
// acquire/release it (FLEDA_ACQUIRE / FLEDA_RELEASE).
//
// libstdc++'s std::mutex carries no capability attributes, so the
// analysis cannot see a std::lock_guard acquiring one. Mutex /
// SharedMutex below are zero-overhead annotated wrappers, and
// MutexLock / SharedReaderLock / SharedWriterLock are the scoped
// guards the analysis does understand. MutexLock exposes the
// underlying std::unique_lock for condition_variable::wait — the wait
// releases and reacquires invisibly to the analysis, which is the
// standard (and sound) idiom: the capability is held whenever the
// waiting code actually runs.
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define FLEDA_TSA(x) __attribute__((x))
#else
#define FLEDA_TSA(x)  // no-op off Clang (GCC has no thread-safety analysis)
#endif

// A type that acts as a lock ("capability" in Clang's terminology).
#define FLEDA_CAPABILITY(x) FLEDA_TSA(capability(x))
// An RAII type that holds a capability for its lifetime.
#define FLEDA_SCOPED_CAPABILITY FLEDA_TSA(scoped_lockable)
// Data member readable/writable only with the capability held.
#define FLEDA_GUARDED_BY(x) FLEDA_TSA(guarded_by(x))
// Pointer member whose *pointee* is protected by the capability.
#define FLEDA_PT_GUARDED_BY(x) FLEDA_TSA(pt_guarded_by(x))
// Function that must be called with the capability held (exclusively /
// at least shared).
#define FLEDA_REQUIRES(...) FLEDA_TSA(requires_capability(__VA_ARGS__))
#define FLEDA_REQUIRES_SHARED(...) \
  FLEDA_TSA(requires_shared_capability(__VA_ARGS__))
// Function that acquires / releases the capability.
#define FLEDA_ACQUIRE(...) FLEDA_TSA(acquire_capability(__VA_ARGS__))
#define FLEDA_ACQUIRE_SHARED(...) \
  FLEDA_TSA(acquire_shared_capability(__VA_ARGS__))
#define FLEDA_RELEASE(...) FLEDA_TSA(release_capability(__VA_ARGS__))
#define FLEDA_RELEASE_SHARED(...) \
  FLEDA_TSA(release_shared_capability(__VA_ARGS__))
// Release of a scoped capability that may have been acquired in either
// mode (the right dtor annotation for shared-capable guards).
#define FLEDA_RELEASE_GENERIC(...) \
  FLEDA_TSA(release_generic_capability(__VA_ARGS__))
#define FLEDA_TRY_ACQUIRE(...) FLEDA_TSA(try_acquire_capability(__VA_ARGS__))
// Function that must NOT be called with the capability held.
#define FLEDA_EXCLUDES(...) FLEDA_TSA(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot model; every use carries a
// justification comment at the call site.
#define FLEDA_NO_THREAD_SAFETY_ANALYSIS FLEDA_TSA(no_thread_safety_analysis)

namespace fleda {

class MutexLock;

// Annotated exclusive mutex. Same cost as std::mutex; prefer the
// scoped MutexLock over calling lock()/unlock() directly.
class FLEDA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLEDA_ACQUIRE() { mu_.lock(); }
  void unlock() FLEDA_RELEASE() { mu_.unlock(); }
  bool try_lock() FLEDA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  // The wrapper itself is the capability; the raw std::mutex guards
  // nothing directly.
  std::mutex mu_;  // fleda-lint: allow(mutex-guarded)
};

// Annotated reader/writer mutex (std::shared_mutex underneath).
class FLEDA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FLEDA_ACQUIRE() { mu_.lock(); }
  void unlock() FLEDA_RELEASE() { mu_.unlock(); }
  void lock_shared() FLEDA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() FLEDA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class SharedReaderLock;
  friend class SharedWriterLock;
  // See Mutex::mu_: the wrapper is the annotated capability.
  std::shared_mutex mu_;  // fleda-lint: allow(mutex-guarded)
};

// Scoped exclusive lock over Mutex. native() hands the underlying
// std::unique_lock to condition_variable::wait; the analysis treats
// the capability as held across the wait, which matches when the
// waiter's code actually executes.
class FLEDA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLEDA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() FLEDA_RELEASE() {}  // lock_'s dtor releases

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// Scoped shared (reader) lock over SharedMutex.
class FLEDA_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) FLEDA_ACQUIRE_SHARED(mu)
      : mu_(&mu.mu_) {
    mu_->lock_shared();
  }
  ~SharedReaderLock() FLEDA_RELEASE_GENERIC() { mu_->unlock_shared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

// Scoped exclusive (writer) lock over SharedMutex.
class FLEDA_SCOPED_CAPABILITY SharedWriterLock {
 public:
  explicit SharedWriterLock(SharedMutex& mu) FLEDA_ACQUIRE(mu) : mu_(&mu.mu_) {
    mu_->lock();
  }
  ~SharedWriterLock() FLEDA_RELEASE_GENERIC() { mu_->unlock(); }

  SharedWriterLock(const SharedWriterLock&) = delete;
  SharedWriterLock& operator=(const SharedWriterLock&) = delete;

 private:
  std::shared_mutex* mu_;
};

}  // namespace fleda
