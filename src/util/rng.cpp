#include "util/rng.hpp"

#include <cmath>

namespace fleda {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++
  std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Take the top 53 bits for a double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection-free-enough bounded draw; bias is
  // negligible for the ranges used here, but reject to be exact.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = mag * std::sin(theta);
  has_cached_normal_ = true;
  return mag * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double lambda) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double r = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = next_u64() ^ (tag * 0xD1B54A32D192ED03ull);
  return Rng(mix);
}

}  // namespace fleda
