// ASCII table printer used by the benchmark harness to render the
// paper's result tables (Tables 2-5) in the same row/column layout the
// paper reports.
#pragma once

#include <string>
#include <vector>

namespace fleda {

class AsciiTable {
 public:
  // Creates a table with the given title (printed above the grid).
  explicit AsciiTable(std::string title = "");

  // Sets the header row.
  void set_header(std::vector<std::string> header);

  // Appends a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles to `precision` decimals.
  static std::string fmt(double value, int precision = 2);

  // Renders the table with column-aligned cells and +-/| borders.
  std::string to_string() const;

  // Prints to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fleda
