#include "util/config.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace fleda {

RunScale resolve_scale(const std::string& name) {
  RunScale s;
  if (name == "smoke") {
    s.name = "smoke";
    s.grid = 16;
    s.rounds = 3;
    s.steps_per_round = 4;
    s.finetune_steps = 20;
    s.batch_size = 4;
    s.placement_fraction = 0.03;
    return s;
  }
  if (name == "full") {
    s.name = "full";
    s.grid = 64;
    s.rounds = 30;
    s.steps_per_round = 40;
    s.finetune_steps = 1200;
    s.batch_size = 8;
    s.placement_fraction = 0.4;
    return s;
  }
  if (name != "quick") {
    FLEDA_LOG_WARN("unknown FLEDA_SCALE '%s'; using 'quick'", name.c_str());
  }
  s.placement_fraction = 0.06;  // tuned so local data is genuinely scarce
  s.rounds = 8;
  s.steps_per_round = 10;
  s.finetune_steps = 120;
  return s;  // quick defaults
}

RunScale scale_from_env() {
  const char* env = std::getenv("FLEDA_SCALE");
  return resolve_scale(env == nullptr ? "quick" : env);
}

}  // namespace fleda
