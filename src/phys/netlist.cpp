#include "phys/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleda {

double Netlist::total_cell_area() const {
  double a = 0.0;
  for (const Cell& c : cells) a += c.area;
  return a;
}

std::int64_t Netlist::num_pins() const {
  std::int64_t p = 0;
  for (const Net& n : nets) p += n.degree();
  return p;
}

NetlistPtr generate_netlist(const NetlistGenParams& params, Rng& rng) {
  const SuiteProfile& prof = params.profile;
  if (params.grid_w <= 0 || params.grid_h <= 0 ||
      params.gcell_cell_capacity <= 0.0) {
    throw std::invalid_argument("generate_netlist: degenerate die");
  }

  auto netlist = std::make_shared<Netlist>();
  netlist->name = params.name;
  netlist->suite = prof.suite;

  // --- macros ---
  const int macro_count = static_cast<int>(
      std::floor(prof.macro_count_mean + rng.uniform(0.0, 1.0)));
  double macro_area_frac = 0.0;
  for (int i = 0; i < macro_count; ++i) {
    Macro m;
    m.width_frac = static_cast<float>(
        prof.macro_size_frac * rng.uniform(0.7, 1.4));
    m.height_frac = static_cast<float>(
        prof.macro_size_frac * rng.uniform(0.7, 1.4));
    macro_area_frac += static_cast<double>(m.width_frac) * m.height_frac;
    netlist->macros.push_back(m);
  }
  macro_area_frac = std::min(macro_area_frac, 0.5);

  // --- standard cells ---
  const double die_capacity = static_cast<double>(params.grid_w) *
                              params.grid_h * params.gcell_cell_capacity;
  const double util =
      rng.uniform(prof.min_utilization, prof.max_utilization);
  const double usable = die_capacity * (1.0 - macro_area_frac);
  // Add cells until the target *area* utilization is reached (cells
  // have a 1x/2x/4x drive-strength area mix, so count != area).
  const double target_area = std::max(32.0, usable * util);
  double placed_area = 0.0;
  while (placed_area < target_area) {
    Cell c;
    const double r = rng.uniform();
    c.area = r < 0.7 ? 1.0f : (r < 0.93 ? 2.0f : 4.0f);
    c.pin_weight = static_cast<float>(
        prof.pin_density_scale * (0.5 + rng.exponential(1.5)));
    placed_area += c.area;
    netlist->cells.push_back(c);
  }
  const std::int64_t num_cells = netlist->num_cells();

  // --- nets ---
  const std::int64_t num_nets = std::max<std::int64_t>(
      8, static_cast<std::int64_t>(prof.nets_per_cell * num_cells));
  netlist->nets.reserve(static_cast<std::size_t>(num_nets));

  // Index-locality window: nets connect cells that are close in the
  // logical ordering, with occasional global escapes.
  const double window =
      std::max(8.0, 0.02 * static_cast<double>(num_cells));
  for (std::int64_t i = 0; i < num_nets; ++i) {
    Net net;
    const std::int64_t seed =
        static_cast<std::int64_t>(rng.uniform_int(num_cells));
    // Degree >= 2, geometric-ish around the suite mean.
    std::int64_t degree =
        2 + static_cast<std::int64_t>(rng.exponential(
                1.0 / std::max(0.1, prof.mean_net_degree - 2.0)));
    degree = std::min<std::int64_t>(degree, 24);
    net.cells.push_back(static_cast<std::int32_t>(seed));
    for (std::int64_t d = 1; d < degree; ++d) {
      std::int64_t pick;
      if (rng.bernoulli(prof.connectivity_locality)) {
        // Global escape: uniform over the whole design.
        pick = static_cast<std::int64_t>(rng.uniform_int(num_cells));
      } else {
        // Local member within the logical window, pin-weight biased by
        // resampling once toward heavier cells.
        const double off = rng.normal(0.0, window);
        pick = seed + static_cast<std::int64_t>(std::lround(off));
        pick = std::clamp<std::int64_t>(pick, 0, num_cells - 1);
        const std::int64_t pick2 = std::clamp<std::int64_t>(
            seed + static_cast<std::int64_t>(std::lround(
                       rng.normal(0.0, window))),
            0, num_cells - 1);
        if (netlist->cells[static_cast<std::size_t>(pick2)].pin_weight >
            netlist->cells[static_cast<std::size_t>(pick)].pin_weight) {
          pick = pick2;
        }
      }
      net.cells.push_back(static_cast<std::int32_t>(pick));
    }
    std::sort(net.cells.begin(), net.cells.end());
    net.cells.erase(std::unique(net.cells.begin(), net.cells.end()),
                    net.cells.end());
    if (net.degree() >= 2) netlist->nets.push_back(std::move(net));
  }

  return netlist;
}

}  // namespace fleda
