#include "phys/suite_profile.hpp"

#include <stdexcept>

namespace fleda {

std::string to_string(BenchmarkSuite suite) {
  switch (suite) {
    case BenchmarkSuite::kIscas89:
      return "ISCAS'89";
    case BenchmarkSuite::kItc99:
      return "ITC'99";
    case BenchmarkSuite::kIwls05:
      return "IWLS'05";
    case BenchmarkSuite::kIspd15:
      return "ISPD'15";
  }
  return "?";
}

BenchmarkSuite parse_suite(const std::string& name) {
  if (name == "iscas89" || name == "ISCAS'89") return BenchmarkSuite::kIscas89;
  if (name == "itc99" || name == "ITC'99") return BenchmarkSuite::kItc99;
  if (name == "iwls05" || name == "IWLS'05") return BenchmarkSuite::kIwls05;
  if (name == "ispd15" || name == "ISPD'15") return BenchmarkSuite::kIspd15;
  throw std::invalid_argument("unknown benchmark suite: " + name);
}

SuiteProfile profile_for(BenchmarkSuite suite) {
  SuiteProfile p;
  p.suite = suite;
  switch (suite) {
    case BenchmarkSuite::kIscas89:
      // Small scan-based sequential benchmarks: local connectivity,
      // modest utilization, no macros, relaxed routing.
      p.min_utilization = 0.35;
      p.max_utilization = 0.60;
      p.connectivity_locality = 0.08;
      p.mean_net_degree = 3.0;
      p.nets_per_cell = 1.15;
      p.macro_count_mean = 0.0;
      p.capacity_scale = 0.60;
      p.pin_density_scale = 0.9;
      p.aspect_spread = 0.10;
      break;
    case BenchmarkSuite::kItc99:
      // RT-level designs: denser logic cones, moderately global nets.
      p.min_utilization = 0.45;
      p.max_utilization = 0.70;
      p.connectivity_locality = 0.15;
      p.mean_net_degree = 3.6;
      p.nets_per_cell = 1.1;
      p.macro_count_mean = 0.3;
      p.macro_size_frac = 0.10;
      p.capacity_scale = 0.85;
      p.pin_density_scale = 1.0;
      p.aspect_spread = 0.15;
      break;
    case BenchmarkSuite::kIwls05:
      // Faraday + OpenCores IP: heterogeneous sizes, some memories,
      // higher pin density.
      p.min_utilization = 0.45;
      p.max_utilization = 0.75;
      p.connectivity_locality = 0.22;
      p.mean_net_degree = 4.0;
      p.nets_per_cell = 1.05;
      p.macro_count_mean = 1.2;
      p.macro_size_frac = 0.14;
      p.capacity_scale = 1.10;
      p.pin_density_scale = 1.15;
      p.aspect_spread = 0.20;
      break;
    case BenchmarkSuite::kIspd15:
      // Detailed-routing-driven placement benchmarks: big blockages,
      // fence-like macros, tight capacity, global connectivity.
      p.min_utilization = 0.55;
      p.max_utilization = 0.80;
      p.connectivity_locality = 0.30;
      p.mean_net_degree = 4.2;
      p.nets_per_cell = 1.0;
      p.macro_count_mean = 3.0;
      p.macro_size_frac = 0.18;
      p.capacity_scale = 1.45;
      p.pin_density_scale = 1.25;
      p.aspect_spread = 0.25;
      break;
  }
  return p;
}

}  // namespace fleda
