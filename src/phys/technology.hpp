// Technology / routing-resource model. Numbers are calibrated to feel
// like NanGate45 global routing at gcell granularity (the paper's
// physical flow is Innovus + NanGate45): each gcell offers a number of
// horizontal and vertical routing tracks; macros consume most of the
// capacity beneath them; overflow beyond a threshold ratio marks a
// DRC hotspot (the standard academic proxy for congestion-driven DRC
// violations).
#pragma once

#include <cstdint>

namespace fleda {

struct Technology {
  // Routing tracks available per gcell per direction. The 32x32 grid
  // is coarse (one gcell covers many detailed-routing tracks across
  // the metal stack), hence the large numbers.
  double horizontal_tracks = 100.0;
  double vertical_tracks = 65.0;

  // Fraction of track capacity remaining inside a macro/blockage.
  double blockage_capacity_factor = 0.2;

  // demand/capacity ratio beyond which a gcell is a DRC hotspot.
  double drc_overflow_ratio = 1.05;

  // Standard-cell area units one gcell can hold at 100% utilization.
  double gcell_cell_capacity = 8.0;

  // Routing demand contributed by one net crossing a gcell edge.
  double wire_unit_demand = 1.0;

  // Local demand contributed by each pin (via/pin-access cost).
  double pin_via_demand = 0.12;
};

// The default technology used everywhere unless overridden.
Technology default_technology();

}  // namespace fleda
