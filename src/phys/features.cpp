#include "phys/features.hpp"

#include <algorithm>

#include "phys/rudy.hpp"

namespace fleda {
namespace {

void write_channel(Tensor& features, std::int64_t channel, const Tensor& map,
                   float scale) {
  const std::int64_t H = features.shape().dim(1);
  const std::int64_t W = features.shape().dim(2);
  float* dst = features.data() + channel * H * W;
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < H * W; ++i) {
    dst[i] = std::clamp(map[i] * inv, 0.0f, 1.0f);
  }
}

}  // namespace

FeatureSample extract_features(const Placement& pl,
                               const RoutingResult& routing,
                               const Technology& tech,
                               const DrcOptions& drc_opts) {
  const std::int64_t H = pl.grid_h;
  const std::int64_t W = pl.grid_w;
  FeatureSample sample;
  sample.features = Tensor(Shape::of(kNumFeatureChannels, H, W));

  write_channel(sample.features, 0, cell_density_map(pl, tech.gcell_cell_capacity),
                2.0f);
  write_channel(sample.features, 1, blockage_map(pl), 1.0f);
  write_channel(sample.features, 2, rudy_map(pl), kRudyScale);
  write_channel(sample.features, 3, pin_density_map(pl), kPinScale);
  write_channel(sample.features, 4, fly_line_map(pl), kFlyScale);

  // Capacity channel: min-direction track capacity relative to the
  // nominal (unblocked, unscaled) horizontal tracks.
  Tensor cap(Shape::of(H, W));
  const float nominal = static_cast<float>(tech.horizontal_tracks);
  for (std::int64_t i = 0; i < cap.numel(); ++i) {
    cap[i] = std::min(routing.capacity_h[i], routing.capacity_v[i]) / nominal;
  }
  write_channel(sample.features, 5, cap, 1.0f);

  Tensor hotspots = drc_hotspot_map(routing, drc_opts);
  sample.label = hotspots.reshaped(Shape::of(1, H, W));
  return sample;
}

}  // namespace fleda
