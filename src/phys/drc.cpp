#include "phys/drc.hpp"

#include <stdexcept>

namespace fleda {

Tensor drc_hotspot_map(const RoutingResult& routing, const DrcOptions& opts) {
  const std::int64_t W = routing.grid_w;
  const std::int64_t H = routing.grid_h;
  Tensor ratio = routing.congestion_ratio();
  Tensor hot(Shape::of(H, W));
  for (std::int64_t i = 0; i < hot.numel(); ++i) {
    hot[i] = ratio[i] > static_cast<float>(opts.threshold) ? 1.0f : 0.0f;
  }
  if (opts.dilation_support <= 0) return hot;

  // One-step dilation: a cold cell with enough hot 8-neighbours joins.
  Tensor out = hot;
  for (std::int64_t gy = 0; gy < H; ++gy) {
    for (std::int64_t gx = 0; gx < W; ++gx) {
      if (hot.at(gy, gx) > 0.5f) continue;
      int support = 0;
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const std::int64_t ny = gy + dy;
          const std::int64_t nx = gx + dx;
          if (ny < 0 || ny >= H || nx < 0 || nx >= W) continue;
          if (hot.at(ny, nx) > 0.5f) ++support;
        }
      }
      if (support >= opts.dilation_support) out.at(gy, gx) = 1.0f;
    }
  }
  return out;
}

double hotspot_rate(const Tensor& label) {
  if (label.numel() == 0) throw std::invalid_argument("hotspot_rate: empty");
  double pos = 0.0;
  for (std::int64_t i = 0; i < label.numel(); ++i) {
    if (label[i] > 0.5f) pos += 1.0;
  }
  return pos / static_cast<double>(label.numel());
}

}  // namespace fleda
