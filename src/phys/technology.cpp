#include "phys/technology.hpp"

namespace fleda {

Technology default_technology() { return Technology{}; }

}  // namespace fleda
