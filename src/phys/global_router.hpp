// Capacity-aware two-bend global router. This is the label oracle of
// the dataset: its overflow map is what the paper obtains from Innovus
// routing + DRC checking. Routing operates on the gcell grid with
// directional capacities (reduced beneath macros) and proceeds in two
// passes:
//   1. initial pass — every two-pin connection (star decomposition of
//      each net around its medoid pin) is routed with the cheaper of
//      the two L-shapes under a congestion-aware edge cost;
//   2. rip-up & reroute — connections crossing overflowed gcells are
//      ripped up and rerouted considering Z-shapes (one extra bend)
//      over several candidate bend positions.
#pragma once

#include <cstdint>
#include <vector>

#include "phys/placer.hpp"
#include "phys/technology.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fleda {

struct RouterOptions {
  Technology tech = default_technology();
  // Multiplies directional track capacities (suite capacity_scale).
  double capacity_scale = 1.0;
  // Number of Z-shape bend candidates per direction in pass 2.
  int z_candidates = 4;
  // Rip-up & reroute iterations.
  int rrr_iterations = 2;
};

struct RoutingResult {
  std::int64_t grid_w = 0;
  std::int64_t grid_h = 0;
  Tensor demand_h;    // [H, W] horizontal track demand
  Tensor demand_v;    // [H, W] vertical track demand
  Tensor capacity_h;  // [H, W]
  Tensor capacity_v;  // [H, W]
  double total_wirelength = 0.0;
  std::int64_t num_connections = 0;

  // max(0, demand - capacity) summed over both directions, [H, W].
  Tensor overflow() const;
  // max(demand_h/capacity_h, demand_v/capacity_v), [H, W].
  Tensor congestion_ratio() const;
  std::int64_t overflowed_gcells() const;
};

// Routes all nets of the placement. Net ordering is randomized from
// `rng` (a real router's ordering nondeterminism).
RoutingResult route(const Placement& placement, const RouterOptions& opts,
                    Rng& rng);

}  // namespace fleda
