// DRC hotspot extraction from routing results. A gcell is a hotspot
// when its worst-direction congestion ratio exceeds the technology
// threshold; an optional one-step dilation absorbs the neighbouring
// cells where congestion-driven shorts and spacing violations actually
// land in detailed routing (hotspots cluster in practice).
#pragma once

#include "phys/global_router.hpp"
#include "phys/technology.hpp"
#include "tensor/tensor.hpp"

namespace fleda {

struct DrcOptions {
  // Congestion ratio marking a violation (tech.drc_overflow_ratio).
  double threshold = 1.05;
  // Dilate hotspots by one gcell when a neighbourhood has >= this many
  // hot cells (0 disables dilation).
  int dilation_support = 2;
};

// Returns a binary [H, W] map (0/1) of DRC hotspots.
Tensor drc_hotspot_map(const RoutingResult& routing, const DrcOptions& opts);

// Fraction of hotspot gcells in a label map.
double hotspot_rate(const Tensor& label);

}  // namespace fleda
