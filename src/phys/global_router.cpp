#include "phys/global_router.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleda {

Tensor RoutingResult::overflow() const {
  Tensor out(Shape::of(grid_h, grid_w));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float oh = std::max(0.0f, demand_h[i] - capacity_h[i]);
    const float ov = std::max(0.0f, demand_v[i] - capacity_v[i]);
    out[i] = oh + ov;
  }
  return out;
}

Tensor RoutingResult::congestion_ratio() const {
  Tensor out(Shape::of(grid_h, grid_w));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float rh = capacity_h[i] > 1e-6f ? demand_h[i] / capacity_h[i] : 10.0f;
    const float rv = capacity_v[i] > 1e-6f ? demand_v[i] / capacity_v[i] : 10.0f;
    out[i] = std::max(rh, rv);
  }
  return out;
}

std::int64_t RoutingResult::overflowed_gcells() const {
  Tensor of = overflow();
  std::int64_t n = 0;
  for (std::int64_t i = 0; i < of.numel(); ++i) {
    if (of[i] > 0.0f) ++n;
  }
  return n;
}

namespace {

// A two-pin connection between gcell coordinates.
struct Connection {
  std::int32_t x0, y0, x1, y1;
};

// A routed path is a list of (gcell index, horizontal?) steps.
struct PathStep {
  std::int32_t gx, gy;
  bool horizontal;
};

class RouterState {
 public:
  RouterState(const Placement& pl, const RouterOptions& opts)
      : W_(pl.grid_w),
        H_(pl.grid_h),
        opts_(opts),
        demand_h_(Shape::of(H_, W_)),
        demand_v_(Shape::of(H_, W_)),
        capacity_h_(Shape::of(H_, W_)),
        capacity_v_(Shape::of(H_, W_)) {
    const double ch = opts.tech.horizontal_tracks * opts.capacity_scale;
    const double cv = opts.tech.vertical_tracks * opts.capacity_scale;
    const double blk = opts.tech.blockage_capacity_factor;
    for (std::int64_t gy = 0; gy < H_; ++gy) {
      for (std::int64_t gx = 0; gx < W_; ++gx) {
        const bool blocked = pl.blocked(gx, gy);
        capacity_h_.at(gy, gx) = static_cast<float>(blocked ? ch * blk : ch);
        capacity_v_.at(gy, gx) = static_cast<float>(blocked ? cv * blk : cv);
      }
    }
  }

  // Congestion-aware cost of using one more track through a gcell.
  double step_cost(std::int64_t gx, std::int64_t gy, bool horizontal) const {
    const float demand =
        horizontal ? demand_h_.at(gy, gx) : demand_v_.at(gy, gx);
    const float cap =
        horizontal ? capacity_h_.at(gy, gx) : capacity_v_.at(gy, gx);
    const double ratio = (demand + 1.0) / std::max(1e-3f, cap);
    // 1 per unit length, exponential pressure past ~80% utilization.
    return 1.0 + (ratio > 0.8 ? std::exp(4.0 * (ratio - 0.8)) - 1.0 : 0.0);
  }

  double path_cost(const std::vector<PathStep>& path) const {
    double c = 0.0;
    for (const PathStep& s : path) c += step_cost(s.gx, s.gy, s.horizontal);
    return c;
  }

  void commit(const std::vector<PathStep>& path, float sign) {
    for (const PathStep& s : path) {
      Tensor& d = s.horizontal ? demand_h_ : demand_v_;
      d.at(s.gy, s.gx) += sign * static_cast<float>(opts_.tech.wire_unit_demand);
    }
  }

  bool path_overflows(const std::vector<PathStep>& path) const {
    for (const PathStep& s : path) {
      const float d = s.horizontal ? demand_h_.at(s.gy, s.gx)
                                   : demand_v_.at(s.gy, s.gx);
      const float c = s.horizontal ? capacity_h_.at(s.gy, s.gx)
                                   : capacity_v_.at(s.gy, s.gx);
      if (d > c) return true;
    }
    return false;
  }

  void add_pin_demand(std::int64_t gx, std::int64_t gy, float weight) {
    const float via = static_cast<float>(opts_.tech.pin_via_demand) * weight;
    demand_h_.at(gy, gx) += via;
    demand_v_.at(gy, gx) += via;
  }

  Tensor& demand_h() { return demand_h_; }
  Tensor& demand_v() { return demand_v_; }
  Tensor& capacity_h() { return capacity_h_; }
  Tensor& capacity_v() { return capacity_v_; }

 private:
  std::int64_t W_, H_;
  const RouterOptions& opts_;
  Tensor demand_h_, demand_v_, capacity_h_, capacity_v_;
};

// Appends the horizontal run y=row, x in [xa..xb] (either order).
void emit_h(std::vector<PathStep>& path, std::int32_t row, std::int32_t xa,
            std::int32_t xb) {
  const std::int32_t lo = std::min(xa, xb);
  const std::int32_t hi = std::max(xa, xb);
  for (std::int32_t x = lo; x <= hi; ++x) path.push_back({x, row, true});
}

// Appends the vertical run x=col, y in [ya..yb].
void emit_v(std::vector<PathStep>& path, std::int32_t col, std::int32_t ya,
            std::int32_t yb) {
  const std::int32_t lo = std::min(ya, yb);
  const std::int32_t hi = std::max(ya, yb);
  for (std::int32_t y = lo; y <= hi; ++y) path.push_back({col, y, false});
}

// L-shape: horizontal first (via row y0) or vertical first (via col x0).
std::vector<PathStep> l_shape(const Connection& c, bool horizontal_first) {
  std::vector<PathStep> path;
  if (horizontal_first) {
    emit_h(path, c.y0, c.x0, c.x1);
    if (c.y0 != c.y1) emit_v(path, c.x1, c.y0, c.y1);
  } else {
    emit_v(path, c.x0, c.y0, c.y1);
    if (c.x0 != c.x1) emit_h(path, c.y1, c.x0, c.x1);
  }
  return path;
}

// Z-shape with a horizontal jog at row `ym` (x0->x0, bend) — pattern
// V(x0: y0..ym), H(ym: x0..x1), V(x1: ym..y1).
std::vector<PathStep> z_shape_hjog(const Connection& c, std::int32_t ym) {
  std::vector<PathStep> path;
  emit_v(path, c.x0, c.y0, ym);
  emit_h(path, ym, c.x0, c.x1);
  emit_v(path, c.x1, ym, c.y1);
  return path;
}

// Z-shape with a vertical jog at column `xm`.
std::vector<PathStep> z_shape_vjog(const Connection& c, std::int32_t xm) {
  std::vector<PathStep> path;
  emit_h(path, c.y0, c.x0, xm);
  emit_v(path, xm, c.y0, c.y1);
  emit_h(path, c.y1, xm, c.x1);
  return path;
}

std::int32_t to_gcell(float v, std::int64_t limit) {
  return static_cast<std::int32_t>(
      std::clamp<std::int64_t>(static_cast<std::int64_t>(v), 0, limit - 1));
}

}  // namespace

RoutingResult route(const Placement& pl, const RouterOptions& opts, Rng& rng) {
  if (!pl.netlist) throw std::invalid_argument("route: empty placement");
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  RouterState state(pl, opts);

  // Pin via demand.
  for (const Net& net : pl.netlist->nets) {
    for (std::int32_t c : net.cells) {
      const std::size_t ci = static_cast<std::size_t>(c);
      state.add_pin_demand(to_gcell(pl.x[ci], W), to_gcell(pl.y[ci], H),
                           pl.netlist->cells[ci].pin_weight);
    }
  }

  // Star decomposition around the medoid pin of each net.
  std::vector<Connection> connections;
  for (const Net& net : pl.netlist->nets) {
    double cx = 0.0, cy = 0.0;
    for (std::int32_t c : net.cells) {
      cx += pl.x[static_cast<std::size_t>(c)];
      cy += pl.y[static_cast<std::size_t>(c)];
    }
    cx /= static_cast<double>(net.degree());
    cy /= static_cast<double>(net.degree());
    std::int32_t medoid = net.cells[0];
    double best = 1e30;
    for (std::int32_t c : net.cells) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const double d = std::fabs(pl.x[ci] - cx) + std::fabs(pl.y[ci] - cy);
      if (d < best) {
        best = d;
        medoid = c;
      }
    }
    const std::size_t mi = static_cast<std::size_t>(medoid);
    const std::int32_t mx = to_gcell(pl.x[mi], W);
    const std::int32_t my = to_gcell(pl.y[mi], H);
    for (std::int32_t c : net.cells) {
      if (c == medoid) continue;
      const std::size_t ci = static_cast<std::size_t>(c);
      connections.push_back(
          {mx, my, to_gcell(pl.x[ci], W), to_gcell(pl.y[ci], H)});
    }
  }
  rng.shuffle(connections);

  // Pass 1: best L-shape per connection.
  std::vector<std::vector<PathStep>> routed(connections.size());
  for (std::size_t i = 0; i < connections.size(); ++i) {
    auto a = l_shape(connections[i], /*horizontal_first=*/true);
    auto b = l_shape(connections[i], /*horizontal_first=*/false);
    auto& chosen = state.path_cost(a) <= state.path_cost(b) ? a : b;
    state.commit(chosen, +1.0f);
    routed[i] = std::move(chosen);
  }

  // Pass 2+: rip-up & reroute overflowed connections with Z-shapes.
  for (int iter = 0; iter < opts.rrr_iterations; ++iter) {
    std::int64_t rerouted = 0;
    for (std::size_t i = 0; i < connections.size(); ++i) {
      if (!state.path_overflows(routed[i])) continue;
      const Connection& c = connections[i];
      state.commit(routed[i], -1.0f);

      std::vector<std::vector<PathStep>> candidates;
      candidates.push_back(l_shape(c, true));
      candidates.push_back(l_shape(c, false));
      for (int z = 0; z < opts.z_candidates; ++z) {
        if (c.y0 != c.y1) {
          const std::int32_t ym = static_cast<std::int32_t>(
              std::min(c.y0, c.y1) +
              rng.uniform_int(static_cast<std::uint64_t>(
                  std::abs(c.y1 - c.y0) + 1)));
          candidates.push_back(z_shape_hjog(c, ym));
        }
        if (c.x0 != c.x1) {
          const std::int32_t xm = static_cast<std::int32_t>(
              std::min(c.x0, c.x1) +
              rng.uniform_int(static_cast<std::uint64_t>(
                  std::abs(c.x1 - c.x0) + 1)));
          candidates.push_back(z_shape_vjog(c, xm));
        }
      }
      std::size_t best_idx = 0;
      double best_cost = 1e300;
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const double cost = state.path_cost(candidates[k]);
        if (cost < best_cost) {
          best_cost = cost;
          best_idx = k;
        }
      }
      state.commit(candidates[best_idx], +1.0f);
      routed[i] = std::move(candidates[best_idx]);
      ++rerouted;
    }
    if (rerouted == 0) break;
  }

  RoutingResult result;
  result.grid_w = W;
  result.grid_h = H;
  result.demand_h = std::move(state.demand_h());
  result.demand_v = std::move(state.demand_v());
  result.capacity_h = std::move(state.capacity_h());
  result.capacity_v = std::move(state.capacity_v());
  result.num_connections = static_cast<std::int64_t>(connections.size());
  double wl = 0.0;
  for (const auto& path : routed) wl += static_cast<double>(path.size());
  result.total_wirelength = wl;
  return result;
}

}  // namespace fleda
