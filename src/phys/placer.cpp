#include "phys/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleda {

double Placement::hpwl() const {
  double total = 0.0;
  for (const Net& net : netlist->nets) {
    float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
    for (std::int32_t c : net.cells) {
      min_x = std::min(min_x, x[static_cast<std::size_t>(c)]);
      max_x = std::max(max_x, x[static_cast<std::size_t>(c)]);
      min_y = std::min(min_y, y[static_cast<std::size_t>(c)]);
      max_y = std::max(max_y, y[static_cast<std::size_t>(c)]);
    }
    total += static_cast<double>(max_x - min_x) + (max_y - min_y);
  }
  return total;
}

bool Placement::blocked(std::int64_t gx, std::int64_t gy) const {
  for (const Rect& r : macro_rects) {
    if (r.contains(gx, gy)) return true;
  }
  return false;
}

namespace {

std::vector<Rect> drop_macros(const Netlist& netlist, std::int64_t W,
                              std::int64_t H, Rng& rng) {
  std::vector<Rect> rects;
  for (const Macro& m : netlist.macros) {
    const std::int64_t mw = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::lround(m.width_frac * W)), 1, W - 1);
    const std::int64_t mh = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::lround(m.height_frac * H)), 1, H - 1);
    Rect best{};
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      Rect r;
      r.x0 = static_cast<std::int32_t>(rng.uniform_int(
          static_cast<std::uint64_t>(W - mw + 1)));
      r.y0 = static_cast<std::int32_t>(rng.uniform_int(
          static_cast<std::uint64_t>(H - mh + 1)));
      r.x1 = r.x0 + static_cast<std::int32_t>(mw);
      r.y1 = r.y0 + static_cast<std::int32_t>(mh);
      bool clash = false;
      for (const Rect& prev : rects) {
        if (r.overlaps(prev)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        best = r;
        placed = true;
      }
    }
    if (placed) rects.push_back(best);
    // A macro that cannot be placed without overlap after 32 tries is
    // dropped; real floorplans would legalize, we simply skip.
  }
  return rects;
}

}  // namespace

Placement place(NetlistPtr netlist, const PlacerOptions& opts, Rng& rng) {
  if (!netlist) throw std::invalid_argument("place: null netlist");
  const std::int64_t W = opts.grid_w;
  const std::int64_t H = opts.grid_h;
  if (W <= 1 || H <= 1) throw std::invalid_argument("place: grid too small");
  const std::int64_t num_cells = netlist->num_cells();

  Placement pl;
  pl.netlist = netlist;
  pl.grid_w = W;
  pl.grid_h = H;
  pl.x.resize(static_cast<std::size_t>(num_cells));
  pl.y.resize(static_cast<std::size_t>(num_cells));
  pl.macro_rects = drop_macros(*netlist, W, H, rng);

  // Per-gcell standard-cell capacity (near-zero under macros).
  const double cap_free = opts.tech.gcell_cell_capacity;
  std::vector<double> capacity(static_cast<std::size_t>(W * H));
  for (std::int64_t gy = 0; gy < H; ++gy) {
    for (std::int64_t gx = 0; gx < W; ++gx) {
      capacity[static_cast<std::size_t>(gy * W + gx)] =
          pl.blocked(gx, gy) ? 0.05 * cap_free : cap_free;
    }
  }

  // --- initial placement: boustrophedon scan in logical order ---
  // Build the snake order of gcells.
  std::vector<std::int64_t> snake;
  snake.reserve(static_cast<std::size_t>(W * H));
  for (std::int64_t gy = 0; gy < H; ++gy) {
    if (gy % 2 == 0) {
      for (std::int64_t gx = 0; gx < W; ++gx) snake.push_back(gy * W + gx);
    } else {
      for (std::int64_t gx = W - 1; gx >= 0; --gx) snake.push_back(gy * W + gx);
    }
  }
  double total_capacity = 0.0;
  for (double c : capacity) total_capacity += c;
  const double total_area = netlist->total_cell_area();
  // Stream cells into gcells proportionally to capacity so the scan
  // ends exactly at the last gcell.
  std::vector<double> occupancy(capacity.size(), 0.0);
  std::size_t scan = 0;
  auto quota_of = [&](std::size_t s) {
    // Proportional share of the total cell area, with 2% slack.
    return capacity[static_cast<std::size_t>(snake[s])] / total_capacity *
           total_area * 1.02;
  };
  // Cumulative quota with carry-over: unused fractional quota of one
  // gcell flows to the next, so the stream always fits the die instead
  // of wasting a remainder at every gcell boundary.
  double cum_quota = quota_of(0);
  double cum_placed = 0.0;
  for (std::int64_t i = 0; i < num_cells; ++i) {
    const double cell_area = netlist->cells[static_cast<std::size_t>(i)].area;
    // Advance past blocked gcells and until the cumulative quota
    // covers this cell.
    while (scan + 1 < snake.size() &&
           (capacity[static_cast<std::size_t>(snake[scan])] < 0.1 ||
            cum_placed + cell_area > cum_quota)) {
      ++scan;
      cum_quota += quota_of(scan);
    }
    const std::int64_t g = snake[std::min(scan, snake.size() - 1)];
    cum_placed += cell_area;
    occupancy[static_cast<std::size_t>(g)] += cell_area;
    const std::int64_t gx = g % W;
    const std::int64_t gy = g / W;
    pl.x[static_cast<std::size_t>(i)] =
        static_cast<float>(gx + rng.uniform(0.05, 0.95));
    pl.y[static_cast<std::size_t>(i)] =
        static_cast<float>(gy + rng.uniform(0.05, 0.95));
  }

  // --- SA refinement on HPWL ---
  // Incidence: cell -> nets.
  std::vector<std::vector<std::int32_t>> cell_nets(
      static_cast<std::size_t>(num_cells));
  for (std::size_t ni = 0; ni < netlist->nets.size(); ++ni) {
    for (std::int32_t c : netlist->nets[ni].cells) {
      cell_nets[static_cast<std::size_t>(c)].push_back(
          static_cast<std::int32_t>(ni));
    }
  }
  auto net_hpwl = [&](std::size_t ni) {
    const Net& net = netlist->nets[ni];
    float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
    for (std::int32_t c : net.cells) {
      const std::size_t ci = static_cast<std::size_t>(c);
      min_x = std::min(min_x, pl.x[ci]);
      max_x = std::max(max_x, pl.x[ci]);
      min_y = std::min(min_y, pl.y[ci]);
      max_y = std::max(max_y, pl.y[ci]);
    }
    return static_cast<double>(max_x - min_x) + (max_y - min_y);
  };

  const std::int64_t total_moves = static_cast<std::int64_t>(
      opts.moves_per_cell * static_cast<double>(num_cells));
  double temperature = opts.initial_temperature;
  const std::int64_t cool_every = std::max<std::int64_t>(1, num_cells / 4);
  const double occupancy_limit = cap_free * opts.occupancy_slack;

  for (std::int64_t move = 0; move < total_moves; ++move) {
    if (move % cool_every == 0) temperature *= opts.cooling;
    const std::size_t ci =
        static_cast<std::size_t>(rng.uniform_int(num_cells));
    if (cell_nets[ci].empty()) continue;
    const float old_x = pl.x[ci];
    const float old_y = pl.y[ci];
    // Displacement scale shrinks with temperature.
    const double sigma = 1.0 + 4.0 * temperature;
    float new_x = static_cast<float>(
        std::clamp(old_x + rng.normal(0.0, sigma), 0.05,
                   static_cast<double>(W) - 0.05));
    float new_y = static_cast<float>(
        std::clamp(old_y + rng.normal(0.0, sigma), 0.05,
                   static_cast<double>(H) - 0.05));
    const std::int64_t new_g =
        static_cast<std::int64_t>(new_y) * W + static_cast<std::int64_t>(new_x);
    const std::int64_t old_g =
        static_cast<std::int64_t>(old_y) * W + static_cast<std::int64_t>(old_x);
    const double cell_area = netlist->cells[ci].area;
    if (new_g != old_g) {
      const std::size_t ng = static_cast<std::size_t>(new_g);
      if (occupancy[ng] + cell_area >
              std::min(occupancy_limit, capacity[ng] * opts.occupancy_slack) ||
          capacity[ng] < 0.1) {
        continue;  // target gcell full or blocked
      }
    }

    double before = 0.0;
    for (std::int32_t ni : cell_nets[ci]) {
      before += net_hpwl(static_cast<std::size_t>(ni));
    }
    pl.x[ci] = new_x;
    pl.y[ci] = new_y;
    double after = 0.0;
    for (std::int32_t ni : cell_nets[ci]) {
      after += net_hpwl(static_cast<std::size_t>(ni));
    }
    const double delta = after - before;
    bool accept = delta <= 0.0;
    if (!accept && temperature > 1e-9) {
      accept = rng.uniform() < std::exp(-delta / temperature);
    }
    if (accept) {
      if (new_g != old_g) {
        occupancy[static_cast<std::size_t>(old_g)] -= cell_area;
        occupancy[static_cast<std::size_t>(new_g)] += cell_area;
      }
    } else {
      pl.x[ci] = old_x;
      pl.y[ci] = old_y;
    }
  }

  return pl;
}

}  // namespace fleda
