// Feature extraction: assembles the model input tensor from the
// placement-time heuristic maps (paper §4.4) and the ground-truth
// hotspot label from the router. Channel order:
//   0  cell density        (area / gcell capacity, clamp [0, 2]/2)
//   1  macro / blockage mask
//   2  RUDY wire density   (/ kRudyScale, clamped)
//   3  pin density         (/ kPinScale, clamped)
//   4  fly lines           (/ kFlyScale, clamped)
//   5  routing capacity    (direction-min capacity / nominal tracks)
// Scales are fixed constants rather than per-sample normalization so
// that the *magnitude* differences between suites survive — they are
// the heterogeneity the paper studies.
#pragma once

#include "phys/drc.hpp"
#include "phys/global_router.hpp"
#include "phys/placer.hpp"
#include "phys/technology.hpp"

namespace fleda {

inline constexpr std::int64_t kNumFeatureChannels = 6;
inline constexpr float kRudyScale = 4.0f;
inline constexpr float kPinScale = 40.0f;
inline constexpr float kFlyScale = 8.0f;

struct FeatureSample {
  Tensor features;  // [kNumFeatureChannels, H, W]
  Tensor label;     // [1, H, W], binary
};

// Extracts model inputs + label for one placement/routing pair.
FeatureSample extract_features(const Placement& placement,
                               const RoutingResult& routing,
                               const Technology& tech,
                               const DrcOptions& drc_opts);

}  // namespace fleda
