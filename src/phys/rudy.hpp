// Placement-time congestion heuristics: RUDY, pin density, fly lines,
// and cell density. These are the input feature channels of all three
// routability models (paper §4.4: "cell density features (e.g.
// locations of cells) and wire density features ... RUDY and fly
// lines"). They are computed from the placement only — the router's
// actual demand is *not* visible to the models, it only produces the
// ground-truth labels.
#pragma once

#include "phys/placer.hpp"
#include "tensor/tensor.hpp"

namespace fleda {

// RUDY (Rectangular Uniform wire DensitY, Spindler & Johannes 2007):
// each net spreads (w+h)/(w*h) wire density uniformly over its
// bounding box. Returns an [H, W] map.
Tensor rudy_map(const Placement& placement);

// Pin-weighted pin density: each net pin deposits its cell's
// pin_weight into the pin's gcell. Returns [H, W].
Tensor pin_density_map(const Placement& placement);

// Fly lines: straight-line rasterization from each pin to its net's
// centroid, the classic pre-route congestion "rat's nest" view.
// Returns [H, W].
Tensor fly_line_map(const Placement& placement);

// Standard-cell area per gcell, normalized by gcell capacity (1.0 =
// nominally full). Returns [H, W].
Tensor cell_density_map(const Placement& placement, double gcell_capacity);

// Macro / routing blockage mask (1 inside a macro). Returns [H, W].
Tensor blockage_map(const Placement& placement);

}  // namespace fleda
