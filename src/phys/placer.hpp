// Grid placer: produces placement solutions for synthetic netlists on
// a W x H gcell grid. This substitutes for Innovus placement in the
// paper's data flow; multiple placement solutions per design are
// obtained by varying the placer seed and effort, mirroring the
// paper's "multiple placement solutions ... with different logic
// synthesis and physical design settings".
//
// Algorithm:
//   1. Macros are dropped with overlap avoidance; the area beneath
//      them loses standard-cell capacity and most routing capacity.
//   2. Standard cells are streamed in netlist (logical) order along a
//      boustrophedon scan of the gcells, weighted by remaining gcell
//      capacity. Because net membership is index-local, this seeds a
//      placement with realistic wirelength locality.
//   3. Simulated-annealing refinement: random cell displacement moves
//      with Metropolis acceptance on the HPWL delta, subject to gcell
//      occupancy limits. Temperature decays geometrically.
#pragma once

#include <cstdint>
#include <vector>

#include "phys/netlist.hpp"
#include "phys/technology.hpp"
#include "util/rng.hpp"

namespace fleda {

// Gcell-aligned rectangle, half-open: [x0,x1) x [y0,y1).
struct Rect {
  std::int32_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  std::int64_t area() const {
    return static_cast<std::int64_t>(x1 - x0) * (y1 - y0);
  }
  bool contains(std::int64_t x, std::int64_t y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  bool overlaps(const Rect& other) const {
    return x0 < other.x1 && other.x0 < x1 && y0 < other.y1 && other.y0 < y1;
  }
};

struct Placement {
  NetlistPtr netlist;
  std::int64_t grid_w = 0;
  std::int64_t grid_h = 0;
  std::vector<float> x;  // per-cell, in [0, grid_w)
  std::vector<float> y;  // per-cell, in [0, grid_h)
  std::vector<Rect> macro_rects;

  // Half-perimeter wirelength over all nets.
  double hpwl() const;
  // true if a gcell is covered by any macro.
  bool blocked(std::int64_t gx, std::int64_t gy) const;
};

struct PlacerOptions {
  std::int64_t grid_w = 32;
  std::int64_t grid_h = 32;
  // SA effort: proposed moves = moves_per_cell * num_cells.
  double moves_per_cell = 3.0;
  double initial_temperature = 2.0;
  double cooling = 0.995;          // applied every num_cells/4 moves
  double occupancy_slack = 1.25;   // gcell may fill to slack * capacity
  Technology tech = default_technology();
};

// Places `netlist`; all randomness comes from `rng`.
Placement place(NetlistPtr netlist, const PlacerOptions& opts, Rng& rng);

}  // namespace fleda
