// Synthetic netlist model and generator.
//
// A Netlist is a set of cells (standard cells and macros) connected by
// multi-pin nets. Generation follows the structure of real synthesized
// designs closely enough to drive the placement/routing substrate:
//   - cell count derives from a target utilization of the die;
//   - each cell gets a pin weight (heavier cells attract more nets);
//   - net membership is drawn with *index locality*: cells are laid on
//     a logical ordering (as netlist hierarchies are), and a net picks
//     members within a geometric window around a seed cell, with a
//     suite-dependent probability of escaping to a uniformly random
//     cell. Low escape probability = local (Rent-low) connectivity;
//     high = global. The placer preserves index locality spatially, so
//     the escape probability directly controls wirelength structure.
//   - macros are generated per the suite profile and handled by the
//     placer as placement blockages / routing capacity reductions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "phys/suite_profile.hpp"
#include "util/rng.hpp"

namespace fleda {

struct Cell {
  float area = 1.0f;       // standard-cell area units
  float pin_weight = 1.0f; // relative likelihood of net membership
};

struct Net {
  std::vector<std::int32_t> cells;  // cell indices, deduplicated
  std::int64_t degree() const { return static_cast<std::int64_t>(cells.size()); }
};

struct Macro {
  // Linear dimensions as fractions of the die side (placed by Placer).
  float width_frac = 0.1f;
  float height_frac = 0.1f;
};

struct Netlist {
  std::string name;
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;
  std::vector<Cell> cells;
  std::vector<Net> nets;
  std::vector<Macro> macros;

  std::int64_t num_cells() const { return static_cast<std::int64_t>(cells.size()); }
  std::int64_t num_nets() const { return static_cast<std::int64_t>(nets.size()); }
  double total_cell_area() const;
  // Total pin count (sum of net degrees).
  std::int64_t num_pins() const;
};

using NetlistPtr = std::shared_ptr<const Netlist>;

struct NetlistGenParams {
  SuiteProfile profile;
  // Die size in gcells; cell count = utilization * capacity.
  std::int64_t grid_w = 32;
  std::int64_t grid_h = 32;
  double gcell_cell_capacity = 16.0;
  std::string name = "design";
};

// Generates a reproducible synthetic netlist. Throws on degenerate
// parameters (zero-size grid, empty capacity).
NetlistPtr generate_netlist(const NetlistGenParams& params, Rng& rng);

}  // namespace fleda
