// Benchmark-suite generation profiles.
//
// The paper's central experimental device is client-level data
// heterogeneity: each client holds designs from one benchmark suite
// (ISCAS'89, ITC'99, IWLS'05, ISPD'15), and suites differ strongly in
// size, connectivity, macro content, and routing pressure. These
// profiles encode those differences for the synthetic netlist
// generator so that the per-client feature distributions are non-IID
// in the same qualitative way:
//   - ISCAS'89: small, shallow sequential benchmarks; low Rent
//     exponent, no macros, generous routing headroom.
//   - ITC'99:   medium RT-level designs; moderate connectivity.
//   - IWLS'05:  mixed Faraday/OpenCores IP; wider size spread, some
//     small macros, denser pins.
//   - ISPD'15:  large mixed-size designs with fence regions and big
//     routing blockages; high utilization and tight capacity.
#pragma once

#include <string>

namespace fleda {

enum class BenchmarkSuite {
  kIscas89,
  kItc99,
  kIwls05,
  kIspd15,
};

std::string to_string(BenchmarkSuite suite);
BenchmarkSuite parse_suite(const std::string& name);

struct SuiteProfile {
  BenchmarkSuite suite = BenchmarkSuite::kIscas89;

  // Design size range in standard cells, scaled to the feature grid by
  // the generator (relative to gcell capacity).
  double min_utilization = 0.4;
  double max_utilization = 0.7;

  // Net connectivity: Rent-style locality (0 = fully local neighbours,
  // 1 = uniformly global) and mean net degree (pins per net).
  double connectivity_locality = 0.1;
  double mean_net_degree = 3.5;
  double nets_per_cell = 1.1;

  // Macros: expected count and linear size as a fraction of die side.
  double macro_count_mean = 0.0;
  double macro_size_frac = 0.12;

  // Routing resources relative to Technology defaults (<1 = tighter).
  double capacity_scale = 1.0;

  // Pin density multiplier (cells with more pins -> more via demand).
  double pin_density_scale = 1.0;

  // Die aspect ratio drawn from [1/(1+spread), 1+spread].
  double aspect_spread = 0.15;
};

// Canonical profile for each suite (values discussed above).
SuiteProfile profile_for(BenchmarkSuite suite);

}  // namespace fleda
