#include "phys/rudy.hpp"

#include <algorithm>
#include <cmath>

namespace fleda {
namespace {

struct BBox {
  float min_x, max_x, min_y, max_y;
};

BBox net_bbox(const Placement& pl, const Net& net) {
  BBox b{1e30f, -1e30f, 1e30f, -1e30f};
  for (std::int32_t c : net.cells) {
    const std::size_t ci = static_cast<std::size_t>(c);
    b.min_x = std::min(b.min_x, pl.x[ci]);
    b.max_x = std::max(b.max_x, pl.x[ci]);
    b.min_y = std::min(b.min_y, pl.y[ci]);
    b.max_y = std::max(b.max_y, pl.y[ci]);
  }
  return b;
}

}  // namespace

Tensor rudy_map(const Placement& pl) {
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  Tensor map(Shape::of(H, W));
  for (const Net& net : pl.netlist->nets) {
    BBox b = net_bbox(pl, net);
    // Degenerate boxes still occupy at least half a gcell per side.
    const float w = std::max(0.5f, b.max_x - b.min_x);
    const float h = std::max(0.5f, b.max_y - b.min_y);
    const float density = (w + h) / (w * h);
    const std::int64_t gx0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(b.min_x), 0, W - 1);
    const std::int64_t gx1 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(b.max_x), 0, W - 1);
    const std::int64_t gy0 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(b.min_y), 0, H - 1);
    const std::int64_t gy1 = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(b.max_y), 0, H - 1);
    for (std::int64_t gy = gy0; gy <= gy1; ++gy) {
      for (std::int64_t gx = gx0; gx <= gx1; ++gx) {
        map.at(gy, gx) += density;
      }
    }
  }
  return map;
}

Tensor pin_density_map(const Placement& pl) {
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  Tensor map(Shape::of(H, W));
  for (const Net& net : pl.netlist->nets) {
    for (std::int32_t c : net.cells) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const std::int64_t gx = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(pl.x[ci]), 0, W - 1);
      const std::int64_t gy = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(pl.y[ci]), 0, H - 1);
      map.at(gy, gx) += pl.netlist->cells[ci].pin_weight;
    }
  }
  return map;
}

Tensor fly_line_map(const Placement& pl) {
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  Tensor map(Shape::of(H, W));
  for (const Net& net : pl.netlist->nets) {
    // Net centroid.
    double cx = 0.0, cy = 0.0;
    for (std::int32_t c : net.cells) {
      cx += pl.x[static_cast<std::size_t>(c)];
      cy += pl.y[static_cast<std::size_t>(c)];
    }
    cx /= static_cast<double>(net.degree());
    cy /= static_cast<double>(net.degree());
    // DDA rasterization pin -> centroid.
    for (std::int32_t c : net.cells) {
      const double px = pl.x[static_cast<std::size_t>(c)];
      const double py = pl.y[static_cast<std::size_t>(c)];
      const double dx = cx - px;
      const double dy = cy - py;
      const int steps =
          1 + static_cast<int>(std::ceil(std::max(std::fabs(dx),
                                                  std::fabs(dy))));
      for (int s = 0; s <= steps; ++s) {
        const double t = static_cast<double>(s) / steps;
        const std::int64_t gx = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(px + t * dx), 0, W - 1);
        const std::int64_t gy = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(py + t * dy), 0, H - 1);
        map.at(gy, gx) += 1.0f / static_cast<float>(steps + 1);
      }
    }
  }
  return map;
}

Tensor cell_density_map(const Placement& pl, double gcell_capacity) {
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  Tensor map(Shape::of(H, W));
  const auto& cells = pl.netlist->cells;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const std::int64_t gx = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(pl.x[ci]), 0, W - 1);
    const std::int64_t gy = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(pl.y[ci]), 0, H - 1);
    map.at(gy, gx) += cells[ci].area;
  }
  const float inv_cap = static_cast<float>(1.0 / gcell_capacity);
  for (std::int64_t i = 0; i < map.numel(); ++i) map[i] *= inv_cap;
  return map;
}

Tensor blockage_map(const Placement& pl) {
  const std::int64_t W = pl.grid_w;
  const std::int64_t H = pl.grid_h;
  Tensor map(Shape::of(H, W));
  for (const Rect& r : pl.macro_rects) {
    for (std::int32_t gy = r.y0; gy < r.y1; ++gy) {
      for (std::int32_t gx = r.x0; gx < r.x1; ++gx) {
        map.at(gy, gx) = 1.0f;
      }
    }
  }
  return map;
}

}  // namespace fleda
