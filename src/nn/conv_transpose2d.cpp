#include "nn/conv_transpose2d.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

ConvTranspose2d::ConvTranspose2d(std::string name,
                                 const ConvTranspose2dOptions& opts, Rng& rng)
    : name_(std::move(name)),
      opts_(opts),
      weight_(name_ + ".weight",
              Shape::of(opts.in_channels,
                        opts.out_channels * opts.kernel * opts.kernel)),
      bias_(name_ + ".bias", Shape::of(opts.out_channels)) {
  if (opts.in_channels <= 0 || opts.out_channels <= 0 || opts.kernel <= 0) {
    throw std::invalid_argument("ConvTranspose2d: bad options for " + name_);
  }
  kaiming_uniform(weight_.value,
                  /*fan_in=*/opts.in_channels * opts.kernel * opts.kernel, rng);
}

ConvGeometry ConvTranspose2d::out_geometry(std::int64_t out_h,
                                           std::int64_t out_w) const {
  ConvGeometry g;
  g.channels = opts_.out_channels;
  g.height = out_h;
  g.width = out_w;
  g.kernel_h = g.kernel_w = opts_.kernel;
  g.pad_h = g.pad_w = opts_.padding;
  g.stride_h = g.stride_w = opts_.stride;
  g.dilation_h = g.dilation_w = 1;
  return g;
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool training) {
  if (input.shape().rank() != 4 || input.shape().dim(1) != opts_.in_channels) {
    throw std::invalid_argument("ConvTranspose2d " + name_ +
                                ": bad input shape " +
                                input.shape().to_string());
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  const std::int64_t OH = opts_.out_size(H);
  const std::int64_t OW = opts_.out_size(W);
  if (OH <= 0 || OW <= 0) {
    throw std::invalid_argument("ConvTranspose2d " + name_ +
                                ": non-positive output");
  }
  ConvGeometry g = out_geometry(OH, OW);
  if (g.out_height() != H || g.out_width() != W) {
    throw std::logic_error("ConvTranspose2d " + name_ +
                           ": geometry inversion failed");
  }

  // See Conv2d::forward: eval passes must not pin the activation.
  cached_input_ = training ? input : Tensor();
  Tensor output(Shape::of(N, opts_.out_channels, OH, OW));

  // Plan once per step; prepack the shared weight when packed.
  const GemmPlan plan = KernelPlanCache::global().plan_for(
      GemmOp::kAT, g.col_rows(), opts_.in_channels, g.col_cols());
  std::vector<float> wpack;
  if (plan.strategy == GemmStrategy::kPacked) {
    wpack.resize(packed_a_elems(plan));
    pack_a(plan, weight_.value.data(), wpack.data());
  }

  const std::int64_t in_stride = opts_.in_channels * H * W;
  const std::int64_t out_stride = opts_.out_channels * OH * OW;
  parallel_for(static_cast<std::size_t>(N), [&](std::size_t nb,
                                                std::size_t ne) {
    float* cols = thread_scratch(
        ScratchSlot::kCols,
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    for (std::size_t n = nb; n < ne; ++n) {
      // cols = W^T [Cout*k*k x Cin] * x [Cin x H*W]
      const float* x_n =
          input.data() + static_cast<std::int64_t>(n) * in_stride;
      if (plan.strategy == GemmStrategy::kPacked) {
        gemm_packed_prepacked_a(plan, wpack.data(), x_n, cols,
                                /*accumulate=*/false);
      } else {
        matmul_at_reference(weight_.value.data(), x_n, cols, g.col_rows(),
                            opts_.in_channels, g.col_cols());
      }
      // scatter-add columns into the (zeroed) output image
      col2im(cols, g,
             output.data() + static_cast<std::int64_t>(n) * out_stride);
      if (opts_.bias) {
        float* out = output.data() + static_cast<std::int64_t>(n) * out_stride;
        for (std::int64_t co = 0; co < opts_.out_channels; ++co) {
          const float b = bias_.value[co];
          float* chan = out + co * OH * OW;
          for (std::int64_t i = 0; i < OH * OW; ++i) chan[i] += b;
        }
      }
    }
  });
  return output;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (input.empty()) {
    throw std::logic_error("ConvTranspose2d " + name_ +
                           ": backward before forward");
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  const std::int64_t OH = opts_.out_size(H);
  const std::int64_t OW = opts_.out_size(W);
  if (grad_output.shape() != Shape::of(N, opts_.out_channels, OH, OW)) {
    throw std::invalid_argument("ConvTranspose2d " + name_ +
                                ": bad grad shape " +
                                grad_output.shape().to_string());
  }
  ConvGeometry g = out_geometry(OH, OW);

  Tensor grad_input(input.shape());
  const std::int64_t in_stride = opts_.in_channels * H * W;
  const std::int64_t out_stride = opts_.out_channels * OH * OW;

  // dx reuses the weight across the batch: plan once, prepack once when
  // packed. dW's per-sample-A GEMM dispatches through matmul_bt.
  const GemmPlan dx_plan = KernelPlanCache::global().plan_for(
      GemmOp::kNN, opts_.in_channels, g.col_rows(), g.col_cols());
  std::vector<float> wpack;
  if (dx_plan.strategy == GemmStrategy::kPacked) {
    wpack.resize(packed_a_elems(dx_plan));
    pack_a(dx_plan, weight_.value.data(), wpack.data());
  }

  // Fixed-slice partials, reduced in slice order (see Conv2d::backward
  // for why a pool-size-dependent mutex merge would be
  // nondeterministic).
  const std::size_t batch = static_cast<std::size_t>(N);
  const std::size_t slices = std::min<std::size_t>(batch, 16);
  const std::size_t span = (batch + slices - 1) / slices;
  std::vector<Tensor> dw_partial(slices, Tensor(weight_.grad.shape()));
  std::vector<Tensor> db_partial(opts_.bias ? slices : 0,
                                 Tensor(bias_.grad.shape()));
  parallel_for(slices, [&](std::size_t sb, std::size_t se) {
    float* dcols = thread_scratch(
        ScratchSlot::kColsGrad,
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    for (std::size_t s = sb; s < se; ++s) {
      for (std::size_t n = s * span; n < std::min(batch, (s + 1) * span);
           ++n) {
        const float* dy =
            grad_output.data() + static_cast<std::int64_t>(n) * out_stride;
        // dcols = im2col(dy) (adjoint of the forward col2im)
        im2col(dy, g, dcols);
        // dx = W [Cin x Cout*k*k] * dcols [Cout*k*k x H*W]
        float* dx_n =
            grad_input.data() + static_cast<std::int64_t>(n) * in_stride;
        if (dx_plan.strategy == GemmStrategy::kPacked) {
          gemm_packed_prepacked_a(dx_plan, wpack.data(), dcols, dx_n,
                                  /*accumulate=*/false);
        } else {
          matmul_reference(weight_.value.data(), dcols, dx_n,
                           opts_.in_channels, g.col_rows(), g.col_cols());
        }
        // dW_s += x [Cin x H*W] * dcols^T
        matmul_bt(input.data() + static_cast<std::int64_t>(n) * in_stride,
                  dcols, dw_partial[s].data(), opts_.in_channels,
                  g.col_cols(), g.col_rows(), /*accumulate=*/true);
        if (opts_.bias) {
          for (std::int64_t co = 0; co < opts_.out_channels; ++co) {
            const float* chan = dy + co * OH * OW;
            double acc = 0.0;
            for (std::int64_t i = 0; i < OH * OW; ++i) acc += chan[i];
            db_partial[s][co] += static_cast<float>(acc);
          }
        }
      }
    }
  });
  for (std::size_t s = 0; s < slices; ++s) {
    add_inplace(weight_.grad, dw_partial[s]);
    if (opts_.bias) add_inplace(bias_.grad, db_partial[s]);
  }
  return grad_input;
}

std::vector<Parameter*> ConvTranspose2d::parameters() {
  if (opts_.bias) return {&weight_, &bias_};
  return {&weight_};
}

std::string ConvTranspose2d::describe() const {
  return "ConvTranspose2d(" + name_ + ", " +
         std::to_string(opts_.in_channels) + "->" +
         std::to_string(opts_.out_channels) + ", k=" +
         std::to_string(opts_.kernel) + ", s=" + std::to_string(opts_.stride) +
         ", p=" + std::to_string(opts_.padding) + ")";
}

}  // namespace fleda
