#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {
namespace {

void check_backward_shape(const Tensor& cached, const Tensor& grad,
                          const char* layer) {
  if (cached.empty()) {
    throw std::logic_error(std::string(layer) + ": backward before forward");
  }
  if (cached.shape() != grad.shape()) {
    throw std::invalid_argument(std::string(layer) + ": bad grad shape");
  }
}

}  // namespace

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = in[i] > 0.0f ? in[i] : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  check_backward_shape(cached_input_, grad_output, "ReLU");
  Tensor grad(grad_output.shape());
  const float* in = cached_input_.data();
  const float* dy = grad_output.data();
  float* dx = grad.data();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = in[i] > 0.0f ? dy[i] : 0.0f;
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    o[i] = in[i] > 0.0f ? in[i] : slope_ * in[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  check_backward_shape(cached_input_, grad_output, "LeakyReLU");
  Tensor grad(grad_output.shape());
  const float* in = cached_input_.data();
  const float* dy = grad_output.data();
  float* dx = grad.data();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    dx[i] = in[i] > 0.0f ? dy[i] : slope_ * dy[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = 1.0f / (1.0f + std::exp(-in[i]));
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  check_backward_shape(cached_output_, grad_output, "Sigmoid");
  Tensor grad(grad_output.shape());
  const float* y = cached_output_.data();
  const float* dy = grad_output.data();
  float* dx = grad.data();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * y[i] * (1.0f - y[i]);
  return grad;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  const std::int64_t n = input.numel();
  for (std::int64_t i = 0; i < n; ++i) o[i] = std::tanh(in[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  check_backward_shape(cached_output_, grad_output, "Tanh");
  Tensor grad(grad_output.shape());
  const float* y = cached_output_.data();
  const float* dy = grad_output.data();
  float* dx = grad.data();
  const std::int64_t n = grad_output.numel();
  for (std::int64_t i = 0; i < n; ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
  return grad;
}

}  // namespace fleda
