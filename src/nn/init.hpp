// Weight initialization schemes.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace fleda {

// He/Kaiming uniform: U(-b, b) with b = sqrt(6 / fan_in); the PyTorch
// default for conv layers feeding ReLU.
void kaiming_uniform(Tensor& w, std::int64_t fan_in, Rng& rng);

// Glorot/Xavier uniform: U(-b, b) with b = sqrt(6 / (fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

// N(0, stddev^2).
void normal_init(Tensor& w, float stddev, Rng& rng);

}  // namespace fleda
