// Training losses. The paper's local objective (Eq. 1) is a pixel MSE
// between the raw network output and the binary hotspot map plus a
// FedProx proximal term; the proximal term operates on parameter
// vectors and lives in fl/client, so losses here are purely
// prediction-vs-target.
#pragma once

#include "tensor/tensor.hpp"

namespace fleda {

struct LossResult {
  float value = 0.0f;  // scalar loss
  Tensor grad;         // dL/d(prediction), same shape as prediction
};

// Mean squared error: L = mean((pred - target)^2).
LossResult mse_loss(const Tensor& prediction, const Tensor& target);

// Binary cross-entropy on logits (numerically stable), mean-reduced.
// Provided for completeness / ablations; the paper uses MSE.
LossResult bce_with_logits_loss(const Tensor& logits, const Tensor& target);

// Weighted MSE giving positive pixels `pos_weight` relative weight —
// useful for the heavily imbalanced hotspot maps.
LossResult weighted_mse_loss(const Tensor& prediction, const Tensor& target,
                             float pos_weight);

}  // namespace fleda
