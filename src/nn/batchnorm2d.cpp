#include "nn/batchnorm2d.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {

BatchNorm2d::BatchNorm2d(std::string name, const BatchNorm2dOptions& opts)
    : name_(std::move(name)),
      opts_(opts),
      gamma_(name_ + ".gamma", Shape::of(opts.num_features)),
      beta_(name_ + ".beta", Shape::of(opts.num_features)),
      running_mean_(Shape::of(opts.num_features)),
      running_var_(Shape::of(opts.num_features), 1.0f) {
  if (opts.num_features <= 0) {
    throw std::invalid_argument("BatchNorm2d: bad num_features for " + name_);
  }
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.shape().rank() != 4 ||
      input.shape().dim(1) != opts_.num_features) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": bad input " +
                                input.shape().to_string());
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t C = opts_.num_features;
  const std::int64_t HW = input.shape().dim(2) * input.shape().dim(3);
  const std::int64_t count = N * HW;

  cached_training_ = training;
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_ = Tensor(Shape::of(C));
  Tensor output(input.shape());

  for (std::int64_t c = 0; c < C; ++c) {
    double m = 0.0, v = 0.0;
    if (training) {
      for (std::int64_t n = 0; n < N; ++n) {
        const float* chan = input.data() + (n * C + c) * HW;
        for (std::int64_t i = 0; i < HW; ++i) m += chan[i];
      }
      m /= static_cast<double>(count);
      for (std::int64_t n = 0; n < N; ++n) {
        const float* chan = input.data() + (n * C + c) * HW;
        for (std::int64_t i = 0; i < HW; ++i) {
          const double d = chan[i] - m;
          v += d * d;
        }
      }
      v /= static_cast<double>(count);  // biased, as in PyTorch normalization
      running_mean_[c] = (1.0f - opts_.momentum) * running_mean_[c] +
                         opts_.momentum * static_cast<float>(m);
      // PyTorch stores the unbiased variance in the running buffer.
      const double unbiased =
          count > 1 ? v * static_cast<double>(count) / (count - 1) : v;
      running_var_[c] = (1.0f - opts_.momentum) * running_var_[c] +
                        opts_.momentum * static_cast<float>(unbiased);
    } else {
      m = running_mean_[c];
      v = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(v) + opts_.eps);
    cached_inv_std_[c] = inv_std;
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    for (std::int64_t n = 0; n < N; ++n) {
      const float* chan = input.data() + (n * C + c) * HW;
      float* xh = cached_xhat_.data() + (n * C + c) * HW;
      float* out = output.data() + (n * C + c) * HW;
      for (std::int64_t i = 0; i < HW; ++i) {
        const float x = (chan[i] - static_cast<float>(m)) * inv_std;
        xh[i] = x;
        out[i] = g * x + b;
      }
    }
  }
  return output;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm2d " + name_ +
                           ": backward before forward");
  }
  if (grad_output.shape() != cached_xhat_.shape()) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": bad grad shape");
  }
  const std::int64_t N = grad_output.shape().dim(0);
  const std::int64_t C = opts_.num_features;
  const std::int64_t HW = grad_output.shape().dim(2) * grad_output.shape().dim(3);
  const std::int64_t count = N * HW;

  Tensor grad_input(grad_output.shape());
  for (std::int64_t c = 0; c < C; ++c) {
    const float g = gamma_.value[c];
    const float inv_std = cached_inv_std_[c];

    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < N; ++n) {
      const float* dy = grad_output.data() + (n * C + c) * HW;
      const float* xh = cached_xhat_.data() + (n * C + c) * HW;
      for (std::int64_t i = 0; i < HW; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    if (cached_training_) {
      const double inv_count = 1.0 / static_cast<double>(count);
      for (std::int64_t n = 0; n < N; ++n) {
        const float* dy = grad_output.data() + (n * C + c) * HW;
        const float* xh = cached_xhat_.data() + (n * C + c) * HW;
        float* dx = grad_input.data() + (n * C + c) * HW;
        for (std::int64_t i = 0; i < HW; ++i) {
          const double term = static_cast<double>(dy[i]) -
                              inv_count * sum_dy -
                              inv_count * sum_dy_xhat * xh[i];
          dx[i] = static_cast<float>(g * inv_std * term);
        }
      }
    } else {
      // Eval mode: statistics are constants.
      for (std::int64_t n = 0; n < N; ++n) {
        const float* dy = grad_output.data() + (n * C + c) * HW;
        float* dx = grad_input.data() + (n * C + c) * HW;
        for (std::int64_t i = 0; i < HW; ++i) dx[i] = g * inv_std * dy[i];
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

std::vector<NamedBuffer> BatchNorm2d::buffers() {
  return {{name_ + ".running_mean", &running_mean_},
          {name_ + ".running_var", &running_var_}};
}

std::string BatchNorm2d::describe() const {
  return "BatchNorm2d(" + name_ + ", C=" + std::to_string(opts_.num_features) +
         ")";
}

}  // namespace fleda
