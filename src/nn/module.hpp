// Layer-wise neural network abstraction with explicit forward /
// backward passes (no tape autograd): each Module caches what it needs
// during forward and consumes the output gradient in backward. This is
// all three paper models need (they are feed-forward FCNs with at most
// one additive shortcut, handled inside the model class).
//
// Parameters are named at construction ("input_conv.weight", ...);
// federated learning code flattens them by name, and FedProx-LG uses
// the names to split global vs local parts. BatchNorm running
// statistics are exposed as named buffers so that parameter
// aggregation can (and in FedAvg-style flows does) average them — the
// behaviour whose instability the paper's FLNet design avoids.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fleda {

// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, const Shape& shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  void zero_grad() { grad.fill(0.0f); }
  std::int64_t numel() const { return value.numel(); }
};

// A non-trainable state tensor (e.g. BatchNorm running mean/var).
struct NamedBuffer {
  std::string name;
  Tensor* tensor = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  // Runs the layer. `training` selects batch statistics vs running
  // statistics in BatchNorm and may be ignored by stateless layers.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  // Consumes dL/d(output) of the latest forward and returns
  // dL/d(input), accumulating parameter gradients (+=).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Trainable parameters (stable order across calls).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // Non-trainable state included in FL aggregation.
  virtual std::vector<NamedBuffer> buffers() { return {}; }

  // Human-readable layer description for logging.
  virtual std::string describe() const = 0;

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  // Total trainable scalar count.
  std::int64_t num_parameters() {
    std::int64_t n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace fleda
