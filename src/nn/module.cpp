#include "nn/module.hpp"

// Module is header-only apart from anchoring the vtable here.

namespace fleda {}  // namespace fleda
