// Pointwise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.
#pragma once

#include "nn/module.hpp"

namespace fleda {

class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override { return "ReLU(" + name_ + ")"; }

 private:
  std::string name_;
  Tensor cached_input_;
};

class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(std::string name = "lrelu", float negative_slope = 0.01f)
      : name_(std::move(name)), slope_(negative_slope) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override {
    return "LeakyReLU(" + name_ + ")";
  }

 private:
  std::string name_;
  float slope_;
  Tensor cached_input_;
};

class Sigmoid : public Module {
 public:
  explicit Sigmoid(std::string name = "sigmoid") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override { return "Sigmoid(" + name_ + ")"; }

 private:
  std::string name_;
  Tensor cached_output_;
};

class Tanh : public Module {
 public:
  explicit Tanh(std::string name = "tanh") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override { return "Tanh(" + name_ + ")"; }

 private:
  std::string name_;
  Tensor cached_output_;
};

}  // namespace fleda
