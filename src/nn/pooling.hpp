// MaxPool2d (square window) used by RouteNet's encoder.
#pragma once

#include "nn/module.hpp"

namespace fleda {

struct MaxPool2dOptions {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::string name, const MaxPool2dOptions& opts);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override;

 private:
  std::string name_;
  MaxPool2dOptions opts_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output elem
};

}  // namespace fleda
