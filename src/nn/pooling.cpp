#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace fleda {

MaxPool2d::MaxPool2d(std::string name, const MaxPool2dOptions& opts)
    : name_(std::move(name)), opts_(opts) {
  if (opts.kernel <= 0 || opts.stride <= 0) {
    throw std::invalid_argument("MaxPool2d: bad options for " + name_);
  }
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("MaxPool2d " + name_ + ": bad input " +
                                input.shape().to_string());
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t C = input.shape().dim(1);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  const std::int64_t OH = (H - opts_.kernel) / opts_.stride + 1;
  const std::int64_t OW = (W - opts_.kernel) / opts_.stride + 1;
  if (OH <= 0 || OW <= 0) {
    throw std::invalid_argument("MaxPool2d " + name_ + ": window too large");
  }

  cached_input_shape_ = input.shape();
  Tensor out(Shape::of(N, C, OH, OW));
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);

  std::int64_t oidx = 0;
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float* chan = input.data() + (n * C + c) * H * W;
      for (std::int64_t oh = 0; oh < OH; ++oh) {
        for (std::int64_t ow = 0; ow < OW; ++ow, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t kh = 0; kh < opts_.kernel; ++kh) {
            const std::int64_t ih = oh * opts_.stride + kh;
            for (std::int64_t kw = 0; kw < opts_.kernel; ++kw) {
              const std::int64_t iw = ow * opts_.stride + kw;
              const std::int64_t idx = ih * W + iw;
              if (chan[idx] > best) {
                best = chan[idx];
                best_idx = idx;
              }
            }
          }
          out[oidx] = best;
          argmax_[static_cast<std::size_t>(oidx)] = (n * C + c) * H * W + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (argmax_.empty()) {
    throw std::logic_error("MaxPool2d " + name_ + ": backward before forward");
  }
  if (grad_output.numel() != static_cast<std::int64_t>(argmax_.size())) {
    throw std::invalid_argument("MaxPool2d " + name_ + ": bad grad shape");
  }
  Tensor grad_input(cached_input_shape_);
  const float* dy = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += dy[i];
  }
  return grad_input;
}

std::string MaxPool2d::describe() const {
  return "MaxPool2d(" + name_ + ", k=" + std::to_string(opts_.kernel) +
         ", s=" + std::to_string(opts_.stride) + ")";
}

}  // namespace fleda
