#include "nn/pixel_shuffle.hpp"

#include <stdexcept>

namespace fleda {

PixelShuffle::PixelShuffle(std::string name, std::int64_t upscale_factor)
    : name_(std::move(name)), r_(upscale_factor) {
  if (r_ <= 0) {
    throw std::invalid_argument("PixelShuffle: bad factor for " + name_);
  }
}

Tensor PixelShuffle::forward(const Tensor& input, bool /*training*/) {
  if (input.shape().rank() != 4 || input.shape().dim(1) % (r_ * r_) != 0) {
    throw std::invalid_argument("PixelShuffle " + name_ + ": bad input " +
                                input.shape().to_string());
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t C_in = input.shape().dim(1);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  const std::int64_t C = C_in / (r_ * r_);

  cached_input_shape_ = input.shape();
  Tensor out(Shape::of(N, C, H * r_, W * r_));
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (std::int64_t dy = 0; dy < r_; ++dy) {
        for (std::int64_t dx = 0; dx < r_; ++dx) {
          const std::int64_t cin = c * r_ * r_ + dy * r_ + dx;
          const float* src = input.data() + ((n * C_in + cin) * H) * W;
          for (std::int64_t h = 0; h < H; ++h) {
            for (std::int64_t w = 0; w < W; ++w) {
              out.at(n, c, h * r_ + dy, w * r_ + dx) = src[h * W + w];
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor PixelShuffle::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() != 4) {
    throw std::logic_error("PixelShuffle " + name_ +
                           ": backward before forward");
  }
  const std::int64_t N = cached_input_shape_.dim(0);
  const std::int64_t C_in = cached_input_shape_.dim(1);
  const std::int64_t H = cached_input_shape_.dim(2);
  const std::int64_t W = cached_input_shape_.dim(3);
  const std::int64_t C = C_in / (r_ * r_);
  if (grad_output.shape() != Shape::of(N, C, H * r_, W * r_)) {
    throw std::invalid_argument("PixelShuffle " + name_ + ": bad grad shape");
  }

  Tensor grad_input(cached_input_shape_);
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (std::int64_t dy = 0; dy < r_; ++dy) {
        for (std::int64_t dx = 0; dx < r_; ++dx) {
          const std::int64_t cin = c * r_ * r_ + dy * r_ + dx;
          float* dst = grad_input.data() + ((n * C_in + cin) * H) * W;
          for (std::int64_t h = 0; h < H; ++h) {
            for (std::int64_t w = 0; w < W; ++w) {
              dst[h * W + w] = grad_output.at(n, c, h * r_ + dy, w * r_ + dx);
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::string PixelShuffle::describe() const {
  return "PixelShuffle(" + name_ + ", r=" + std::to_string(r_) + ")";
}

}  // namespace fleda
