// 2D convolution (im2col + matmul) with stride, zero padding, and
// dilation — the workhorse of FLNet / RouteNet / PROS. Weight layout
// is [Cout, Cin*kh*kw] (a GEMM-ready matrix), bias is [Cout].
#pragma once

#include "nn/module.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace fleda {

struct Conv2dOptions {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;   // square kernel
  std::int64_t stride = 1;
  std::int64_t padding = 0;  // use `same_padding()` for odd kernels
  std::int64_t dilation = 1;
  bool bias = true;

  // Padding that preserves H/W at stride 1 for odd kernels.
  Conv2dOptions& same_padding() {
    padding = dilation * (kernel - 1) / 2;
    return *this;
  }
};

class Conv2d : public Module {
 public:
  // `name` prefixes the parameter names ("<name>.weight").
  Conv2d(std::string name, const Conv2dOptions& opts, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string describe() const override;

  const Conv2dOptions& options() const { return opts_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  // Output spatial size for an input of h x w.
  std::pair<std::int64_t, std::int64_t> output_hw(std::int64_t h,
                                                  std::int64_t w) const;

 private:
  ConvGeometry geometry(std::int64_t h, std::int64_t w) const;

  std::string name_;
  Conv2dOptions opts_;
  Parameter weight_;  // [Cout, Cin*k*k]
  Parameter bias_;    // [Cout] (unused when !opts_.bias)
  Tensor cached_input_;
};

}  // namespace fleda
