// Transposed 2D convolution (a.k.a. deconvolution), the upsampling
// operator in RouteNet's decoder. Implemented as the exact adjoint of
// Conv2d: forward is conv-backward-data (matmul + col2im), backward is
// conv-forward (im2col + matmul). Weight layout is [Cin, Cout*kh*kw].
#pragma once

#include "nn/module.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace fleda {

struct ConvTranspose2dOptions {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t padding = 0;
  bool bias = true;

  std::int64_t out_size(std::int64_t in) const {
    return (in - 1) * stride - 2 * padding + kernel;
  }
};

class ConvTranspose2d : public Module {
 public:
  ConvTranspose2d(std::string name, const ConvTranspose2dOptions& opts,
                  Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string describe() const override;

  const ConvTranspose2dOptions& options() const { return opts_; }

 private:
  // Geometry of the *output* image viewed as a conv input, which makes
  // col2im/im2col exact adjoints of the corresponding Conv2d.
  ConvGeometry out_geometry(std::int64_t out_h, std::int64_t out_w) const;

  std::string name_;
  ConvTranspose2dOptions opts_;
  Parameter weight_;  // [Cin, Cout*k*k]
  Parameter bias_;    // [Cout]
  Tensor cached_input_;
};

}  // namespace fleda
