// First-order optimizers over a fixed set of Parameters. The paper
// trains with Adam (lr 2e-4) and L2 regularization 1e-5; weight decay
// here is classic L2 (added to the gradient), matching torch.optim.Adam's
// `weight_decay` semantics.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fleda {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

struct SGDOptions {
  double lr = 1e-2;
  double momentum = 0.0;
  double weight_decay = 0.0;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, const SGDOptions& opts);
  void step() override;

 private:
  SGDOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  double lr = 2e-4;           // paper value
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 1e-5;  // paper's L2 strength
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, const AdamOptions& opts);
  void step() override;

  // Resets moment estimates and the step counter (used when a client
  // receives fresh global parameters and restarts local optimization).
  void reset_state();

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace fleda
