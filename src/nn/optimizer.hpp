// First-order optimizers over a fixed set of Parameters. The paper
// trains with Adam (lr 2e-4) and L2 regularization 1e-5; weight decay
// here is classic L2 (added to the gradient), matching torch.optim.Adam's
// `weight_decay` semantics.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fleda {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  // Applies one update using the accumulated gradients.
  virtual void step() = 0;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }

  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

struct SGDOptions {
  double lr = 1e-2;
  double momentum = 0.0;
  double weight_decay = 0.0;
};

class SGD : public Optimizer {
 public:
  SGD(std::vector<Parameter*> params, const SGDOptions& opts);
  void step() override;

 private:
  SGDOptions opts_;
  std::vector<Tensor> velocity_;
};

struct AdamOptions {
  double lr = 2e-4;           // paper value
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 1e-5;  // paper's L2 strength
};

// A detached snapshot of Adam's per-parameter state (first/second
// moments and step counter). Clients that keep their optimizer across
// rounds (ClientTrainConfig::reset_optimizer == false) persist this
// instead of a whole model+optimizer pair — the scratch-model pool
// owns the live Adam, the client owns only the moments.
struct AdamMoments {
  std::vector<Tensor> m;
  std::vector<Tensor> v;
  std::int64_t t = 0;

  bool empty() const { return m.empty() && v.empty() && t == 0; }
  void clear() {
    m.clear();
    v.clear();
    t = 0;
  }
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, const AdamOptions& opts);
  void step() override;

  // Resets moment estimates and the step counter (used when a client
  // receives fresh global parameters and restarts local optimization).
  void reset_state();

  // Replaces the hyperparameters while keeping the moment buffers —
  // a pooled optimizer serves callers with different train configs.
  void set_options(const AdamOptions& opts) { opts_ = opts; }
  const AdamOptions& options() const { return opts_; }

  // Deep-copies the moments out / back in. import throws
  // std::invalid_argument if the snapshot's shapes do not match this
  // optimizer's parameters.
  AdamMoments export_moments() const;
  void import_moments(const AdamMoments& moments);

 private:
  AdamOptions opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace fleda
