#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {
namespace {

void check_shapes(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  if (a.numel() == 0) {
    throw std::invalid_argument(std::string(op) + ": empty tensors");
  }
}

}  // namespace

LossResult mse_loss(const Tensor& prediction, const Tensor& target) {
  check_shapes(prediction, target, "mse_loss");
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const float* p = prediction.data();
  const float* t = target.data();
  float* g = result.grad.data();
  const std::int64_t n = prediction.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = p[i] - t[i];
    acc += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

LossResult bce_with_logits_loss(const Tensor& logits, const Tensor& target) {
  check_shapes(logits, target, "bce_with_logits_loss");
  LossResult result;
  result.grad = Tensor(logits.shape());
  const float* z = logits.data();
  const float* t = target.data();
  float* g = result.grad.data();
  const std::int64_t n = logits.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    // loss = max(z,0) - z*t + log(1 + exp(-|z|))
    const float zi = z[i];
    const float ti = t[i];
    acc += (zi > 0.0f ? zi : 0.0f) - zi * ti +
           std::log1p(std::exp(-std::fabs(zi)));
    const float sig = 1.0f / (1.0f + std::exp(-zi));
    g[i] = (sig - ti) * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

LossResult weighted_mse_loss(const Tensor& prediction, const Tensor& target,
                             float pos_weight) {
  check_shapes(prediction, target, "weighted_mse_loss");
  if (pos_weight <= 0.0f) {
    throw std::invalid_argument("weighted_mse_loss: pos_weight must be > 0");
  }
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const float* p = prediction.data();
  const float* t = target.data();
  float* g = result.grad.data();
  const std::int64_t n = prediction.numel();
  const float inv_n = 1.0f / static_cast<float>(n);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float w = t[i] > 0.5f ? pos_weight : 1.0f;
    const float d = p[i] - t[i];
    acc += static_cast<double>(w) * d * d;
    g[i] = 2.0f * w * d * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

}  // namespace fleda
