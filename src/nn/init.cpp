#include "nn/init.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {

void kaiming_uniform(Tensor& w, std::int64_t fan_in, Rng& rng) {
  if (fan_in <= 0) throw std::invalid_argument("kaiming_uniform: bad fan_in");
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  float* p = w.data();
  const std::int64_t n = w.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng) {
  if (fan_in <= 0 || fan_out <= 0) {
    throw std::invalid_argument("xavier_uniform: bad fans");
  }
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  float* p = w.data();
  const std::int64_t n = w.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

void normal_init(Tensor& w, float stddev, Rng& rng) {
  float* p = w.data();
  const std::int64_t n = w.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

}  // namespace fleda
