#include "nn/sequential.hpp"

#include <sstream>

namespace fleda {

Sequential& Sequential::add(ModulePtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<NamedBuffer> Sequential::buffers() {
  std::vector<NamedBuffer> bufs;
  for (auto& layer : layers_) {
    for (NamedBuffer b : layer->buffers()) bufs.push_back(b);
  }
  return bufs;
}

std::string Sequential::describe() const {
  std::ostringstream out;
  out << "Sequential(" << name_ << ") {\n";
  for (const auto& layer : layers_) out << "  " << layer->describe() << "\n";
  out << "}";
  return out.str();
}

}  // namespace fleda
