#include "nn/conv2d.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/plan.hpp"
#include "util/scratch.hpp"
#include "util/thread_pool.hpp"

namespace fleda {

Conv2d::Conv2d(std::string name, const Conv2dOptions& opts, Rng& rng)
    : name_(std::move(name)),
      opts_(opts),
      weight_(name_ + ".weight",
              Shape::of(opts.out_channels,
                        opts.in_channels * opts.kernel * opts.kernel)),
      bias_(name_ + ".bias", Shape::of(opts.out_channels)) {
  if (opts.in_channels <= 0 || opts.out_channels <= 0 || opts.kernel <= 0) {
    throw std::invalid_argument("Conv2d: bad options for " + name_);
  }
  kaiming_uniform(weight_.value,
                  /*fan_in=*/opts.in_channels * opts.kernel * opts.kernel, rng);
  // bias stays zero-initialized
}

ConvGeometry Conv2d::geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.channels = opts_.in_channels;
  g.height = h;
  g.width = w;
  g.kernel_h = g.kernel_w = opts_.kernel;
  g.pad_h = g.pad_w = opts_.padding;
  g.stride_h = g.stride_w = opts_.stride;
  g.dilation_h = g.dilation_w = opts_.dilation;
  return g;
}

std::pair<std::int64_t, std::int64_t> Conv2d::output_hw(std::int64_t h,
                                                        std::int64_t w) const {
  ConvGeometry g = geometry(h, w);
  return {g.out_height(), g.out_width()};
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  if (input.shape().rank() != 4 || input.shape().dim(1) != opts_.in_channels) {
    throw std::invalid_argument("Conv2d " + name_ + ": bad input shape " +
                                input.shape().to_string());
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  ConvGeometry g = geometry(H, W);
  const std::int64_t OH = g.out_height();
  const std::int64_t OW = g.out_width();
  if (OH <= 0 || OW <= 0) {
    throw std::invalid_argument("Conv2d " + name_ + ": non-positive output");
  }

  // Only a training pass needs the input for backward; an evaluation
  // pass must not pin a batch-sized activation on the layer (at
  // K = 1000 every client evaluates, and those tensors add up).
  cached_input_ = training ? input : Tensor();
  Tensor output(Shape::of(N, opts_.out_channels, OH, OW));

  // One plan for the whole step; when the planner picks the packed
  // strategy, the weight panels are packed once here and shared
  // read-only across the batch workers.
  const GemmPlan plan = KernelPlanCache::global().plan_for(
      GemmOp::kNN, opts_.out_channels, g.col_rows(), g.col_cols());
  std::vector<float> wpack;
  if (plan.strategy == GemmStrategy::kPacked) {
    wpack.resize(packed_a_elems(plan));
    pack_a(plan, weight_.value.data(), wpack.data());
  }

  const std::int64_t in_stride = opts_.in_channels * H * W;
  const std::int64_t out_stride = opts_.out_channels * OH * OW;
  // Batch-parallel: output slices are disjoint, scratch is per-chunk.
  // Under an outer parallel region this degrades to the serial loop.
  parallel_for(static_cast<std::size_t>(N), [&](std::size_t nb,
                                                std::size_t ne) {
    float* cols = thread_scratch(
        ScratchSlot::kCols,
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    for (std::size_t n = nb; n < ne; ++n) {
      im2col(input.data() + static_cast<std::int64_t>(n) * in_stride, g,
             cols);
      // y = W [Cout x rows] * cols [rows x OHW]
      float* out_n = output.data() + static_cast<std::int64_t>(n) * out_stride;
      if (plan.strategy == GemmStrategy::kPacked) {
        gemm_packed_prepacked_a(plan, wpack.data(), cols, out_n,
                                /*accumulate=*/false);
      } else {
        matmul_reference(weight_.value.data(), cols, out_n,
                         opts_.out_channels, g.col_rows(), g.col_cols());
      }
      if (opts_.bias) {
        float* out = output.data() + static_cast<std::int64_t>(n) * out_stride;
        for (std::int64_t co = 0; co < opts_.out_channels; ++co) {
          const float b = bias_.value[co];
          float* chan = out + co * OH * OW;
          for (std::int64_t i = 0; i < OH * OW; ++i) chan[i] += b;
        }
      }
    }
  });
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (input.empty()) {
    throw std::logic_error("Conv2d " + name_ + ": backward before forward");
  }
  const std::int64_t N = input.shape().dim(0);
  const std::int64_t H = input.shape().dim(2);
  const std::int64_t W = input.shape().dim(3);
  ConvGeometry g = geometry(H, W);
  const std::int64_t OH = g.out_height();
  const std::int64_t OW = g.out_width();
  if (grad_output.shape() != Shape::of(N, opts_.out_channels, OH, OW)) {
    throw std::invalid_argument("Conv2d " + name_ + ": bad grad shape " +
                                grad_output.shape().to_string());
  }

  Tensor grad_input(input.shape());
  const std::int64_t in_stride = opts_.in_channels * H * W;
  const std::int64_t out_stride = opts_.out_channels * OH * OW;

  // dcols reuses the weight across the whole batch: plan once, prepack
  // once when packed. dW's GEMM has a per-sample A (dy), so it goes
  // through the dispatching matmul_bt below.
  const GemmPlan dx_plan = KernelPlanCache::global().plan_for(
      GemmOp::kAT, g.col_rows(), opts_.out_channels, g.col_cols());
  std::vector<float> wpack;
  if (dx_plan.strategy == GemmStrategy::kPacked) {
    wpack.resize(packed_a_elems(dx_plan));
    pack_a(dx_plan, weight_.value.data(), wpack.data());
  }

  // Batch-parallel over a FIXED number of slices (independent of the
  // thread-pool size), each with its own dW/db partial, reduced
  // serially in slice order below. Both properties matter: a per-chunk
  // mutex merge would make the float sums depend on chunk boundaries
  // (pool size) and completion order — the determinism tests compare
  // runs across pool sizes bit-for-bit.
  const std::size_t batch = static_cast<std::size_t>(N);
  const std::size_t slices = std::min<std::size_t>(batch, 16);
  const std::size_t span = (batch + slices - 1) / slices;
  std::vector<Tensor> dw_partial(slices, Tensor(weight_.grad.shape()));
  std::vector<Tensor> db_partial(opts_.bias ? slices : 0,
                                 Tensor(bias_.grad.shape()));
  parallel_for(slices, [&](std::size_t sb, std::size_t se) {
    const std::size_t col_elems =
        static_cast<std::size_t>(g.col_rows() * g.col_cols());
    float* cols = thread_scratch(ScratchSlot::kCols, col_elems);
    float* dcols = thread_scratch(ScratchSlot::kColsGrad, col_elems);
    for (std::size_t s = sb; s < se; ++s) {
      for (std::size_t n = s * span; n < std::min(batch, (s + 1) * span);
           ++n) {
        const float* dy =
            grad_output.data() + static_cast<std::int64_t>(n) * out_stride;
        // Recompute the column matrix (cheaper than caching per sample).
        im2col(input.data() + static_cast<std::int64_t>(n) * in_stride, g,
               cols);
        // dW_s += dy [Cout x OHW] * cols^T
        matmul_bt(dy, cols, dw_partial[s].data(), opts_.out_channels,
                  g.col_cols(), g.col_rows(), /*accumulate=*/true);
        // dcols = W^T [rows x Cout] * dy [Cout x OHW]
        if (dx_plan.strategy == GemmStrategy::kPacked) {
          gemm_packed_prepacked_a(dx_plan, wpack.data(), dy, dcols,
                                  /*accumulate=*/false);
        } else {
          matmul_at_reference(weight_.value.data(), dy, dcols, g.col_rows(),
                              opts_.out_channels, g.col_cols());
        }
        col2im(dcols, g,
               grad_input.data() + static_cast<std::int64_t>(n) * in_stride);
        if (opts_.bias) {
          for (std::int64_t co = 0; co < opts_.out_channels; ++co) {
            const float* chan = dy + co * OH * OW;
            double acc = 0.0;
            for (std::int64_t i = 0; i < OH * OW; ++i) acc += chan[i];
            db_partial[s][co] += static_cast<float>(acc);
          }
        }
      }
    }
  });
  for (std::size_t s = 0; s < slices; ++s) {
    add_inplace(weight_.grad, dw_partial[s]);
    if (opts_.bias) add_inplace(bias_.grad, db_partial[s]);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (opts_.bias) return {&weight_, &bias_};
  return {&weight_};
}

std::string Conv2d::describe() const {
  return "Conv2d(" + name_ + ", " + std::to_string(opts_.in_channels) + "->" +
         std::to_string(opts_.out_channels) + ", k=" +
         std::to_string(opts_.kernel) + ", s=" + std::to_string(opts_.stride) +
         ", p=" + std::to_string(opts_.padding) + ", d=" +
         std::to_string(opts_.dilation) + ")";
}

}  // namespace fleda
