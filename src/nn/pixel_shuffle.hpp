// PixelShuffle (sub-pixel convolution upsampling, Shi et al. 2016),
// the upsampling operator in PROS. Rearranges [N, C*r^2, H, W] into
// [N, C, H*r, W*r]; backward is the inverse permutation.
#pragma once

#include "nn/module.hpp"

namespace fleda {

class PixelShuffle : public Module {
 public:
  PixelShuffle(std::string name, std::int64_t upscale_factor);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string describe() const override;

  std::int64_t upscale_factor() const { return r_; }

 private:
  std::string name_;
  std::int64_t r_;
  Shape cached_input_shape_;
};

}  // namespace fleda
