// Sequential container chaining Modules; also usable as a sub-block
// inside hand-wired model graphs (e.g. RouteNet's shortcut branches).
#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace fleda {

class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  // Appends a layer; returns a reference for chaining.
  Sequential& add(ModulePtr layer);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::string describe() const override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::string name_;
  std::vector<ModulePtr> layers_;
};

}  // namespace fleda
