// BatchNorm2d with running statistics.
//
// This layer is central to the paper's argument: PROS-style deep
// models rely on BatchNorm for convergence, but under federated
// parameter aggregation the running mean/variance buffers are averaged
// across clients whose feature distributions differ, which destabilizes
// inference-time normalization. The buffers are therefore exposed via
// Module::buffers() and participate in FL aggregation exactly like the
// PyTorch state_dict would.
#pragma once

#include "nn/module.hpp"

namespace fleda {

struct BatchNorm2dOptions {
  std::int64_t num_features = 0;
  float eps = 1e-5f;
  float momentum = 0.1f;  // running = (1-m)*running + m*batch
};

class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::string name, const BatchNorm2dOptions& opts);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override;
  std::string describe() const override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  BatchNorm2dOptions opts_;
  Parameter gamma_;  // scale, init 1
  Parameter beta_;   // shift, init 0
  Tensor running_mean_;
  Tensor running_var_;

  // forward cache
  bool cached_training_ = false;
  Tensor cached_xhat_;     // normalized input
  Tensor cached_inv_std_;  // per-channel 1/sqrt(var+eps)
};

}  // namespace fleda
