#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace fleda {

SGD::SGD(std::vector<Parameter*> params, const SGDOptions& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  if (opts_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    const std::int64_t n = p->value.numel();
    const float lr = static_cast<float>(opts_.lr);
    const float wd = static_cast<float>(opts_.weight_decay);
    if (opts_.momentum == 0.0) {
      for (std::int64_t j = 0; j < n; ++j) {
        w[j] -= lr * (g[j] + wd * w[j]);
      }
    } else {
      const float mom = static_cast<float>(opts_.momentum);
      float* v = velocity_[i].data();
      for (std::int64_t j = 0; j < n; ++j) {
        v[j] = mom * v[j] + g[j] + wd * w[j];
        w[j] -= lr * v[j];
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, const AdamOptions& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::reset_state() {
  for (auto& t : m_) t.fill(0.0f);
  for (auto& t : v_) t.fill(0.0f);
  t_ = 0;
}

AdamMoments Adam::export_moments() const {
  AdamMoments moments;
  moments.m = m_;
  moments.v = v_;
  moments.t = t_;
  return moments;
}

void Adam::import_moments(const AdamMoments& moments) {
  if (moments.m.size() != m_.size() || moments.v.size() != v_.size()) {
    throw std::invalid_argument("Adam::import_moments: parameter count "
                                "mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (moments.m[i].shape() != m_[i].shape() ||
        moments.v[i].shape() != v_[i].shape()) {
      throw std::invalid_argument("Adam::import_moments: shape mismatch at "
                                  "parameter " + std::to_string(i));
    }
  }
  m_ = moments.m;
  v_ = moments.v;
  t_ = moments.t;
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(opts_.beta2, static_cast<double>(t_));
  const float lr = static_cast<float>(opts_.lr);
  const float b1 = static_cast<float>(opts_.beta1);
  const float b2 = static_cast<float>(opts_.beta2);
  const float eps = static_cast<float>(opts_.eps);
  const float wd = static_cast<float>(opts_.weight_decay);
  const float inv_bc1 = static_cast<float>(1.0 / bc1);
  const float inv_bc2 = static_cast<float>(1.0 / bc2);

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p->value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      const float mhat = m[j] * inv_bc1;
      const float vhat = v[j] * inv_bc2;
      w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

}  // namespace fleda
