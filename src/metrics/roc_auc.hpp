// ROC AUC — the paper's accuracy metric. Computed exactly via the
// rank statistic (Mann-Whitney U) with midrank tie handling, over all
// pixels of all evaluated samples.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace fleda {

// AUC of scores vs binary labels (label > 0.5 = positive). Returns 0.5
// when either class is absent (undefined AUC, neutral convention).
double roc_auc(const std::vector<float>& scores,
               const std::vector<float>& labels);

// Streaming accumulator: collect (score, label) pixels sample by
// sample, then compute once.
class AucAccumulator {
 public:
  // Appends every element of `scores` / `labels` (same numel).
  void add(const Tensor& scores, const Tensor& labels);
  void add(float score, float label);

  double auc() const;
  std::size_t count() const { return scores_.size(); }
  void reset();

 private:
  std::vector<float> scores_;
  std::vector<float> labels_;
};

}  // namespace fleda
