#include "metrics/confusion.hpp"

#include <stdexcept>

namespace fleda {

double ConfusionMatrix::accuracy() const {
  const std::int64_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::precision() const {
  return (tp + fp) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fp);
}

double ConfusionMatrix::recall() const {
  return (tp + fn) == 0 ? 0.0
                        : static_cast<double>(tp) / static_cast<double>(tp + fn);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::false_positive_rate() const {
  return (fp + tn) == 0 ? 0.0
                        : static_cast<double>(fp) / static_cast<double>(fp + tn);
}

ConfusionMatrix confusion_at(const Tensor& scores, const Tensor& labels,
                             float threshold) {
  if (scores.numel() != labels.numel()) {
    throw std::invalid_argument("confusion_at: numel mismatch");
  }
  ConfusionMatrix cm;
  const std::int64_t n = scores.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const bool pred = scores[i] > threshold;
    const bool pos = labels[i] > 0.5f;
    if (pred && pos) {
      ++cm.tp;
    } else if (pred && !pos) {
      ++cm.fp;
    } else if (!pred && pos) {
      ++cm.fn;
    } else {
      ++cm.tn;
    }
  }
  return cm;
}

}  // namespace fleda
