#include "metrics/roc_auc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fleda {

double roc_auc(const std::vector<float>& scores,
               const std::vector<float>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_auc: size mismatch");
  }
  const std::size_t n = scores.size();
  if (n == 0) return 0.5;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Midranks with tie groups; accumulate rank-sum of positives.
  double rank_sum_pos = 0.0;
  std::size_t num_pos = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // ranks i+1 .. j (1-based); midrank:
    const double midrank = 0.5 * (static_cast<double>(i + 1) + j);
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5f) {
        rank_sum_pos += midrank;
        ++num_pos;
      }
    }
    i = j;
  }
  const std::size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

void AucAccumulator::add(const Tensor& scores, const Tensor& labels) {
  if (scores.numel() != labels.numel()) {
    throw std::invalid_argument("AucAccumulator::add: numel mismatch");
  }
  const std::int64_t n = scores.numel();
  scores_.reserve(scores_.size() + static_cast<std::size_t>(n));
  labels_.reserve(labels_.size() + static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    scores_.push_back(scores[k]);
    labels_.push_back(labels[k]);
  }
}

void AucAccumulator::add(float score, float label) {
  scores_.push_back(score);
  labels_.push_back(label);
}

double AucAccumulator::auc() const { return roc_auc(scores_, labels_); }

void AucAccumulator::reset() {
  scores_.clear();
  labels_.clear();
}

}  // namespace fleda
