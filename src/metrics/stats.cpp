#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fleda {

SummaryStats summarize(const std::vector<double>& values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("pearson: sizes");
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace fleda
