// Small statistics helpers used by evaluation and benches.
#pragma once

#include <vector>

namespace fleda {

struct SummaryStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

SummaryStats summarize(const std::vector<double>& values);

// Pearson correlation of two equally sized series (0 on degenerate
// input).
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace fleda
