// Thresholded confusion matrix and derived classification metrics.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace fleda {

struct ConfusionMatrix {
  std::int64_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::int64_t total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  double precision() const;  // 0 when no positive predictions
  double recall() const;     // 0 when no positive labels
  double f1() const;
  double true_positive_rate() const { return recall(); }
  double false_positive_rate() const;
};

// Builds a confusion matrix by thresholding scores at `threshold`.
ConfusionMatrix confusion_at(const Tensor& scores, const Tensor& labels,
                             float threshold);

}  // namespace fleda
